package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nasaic/internal/analysis/framework"
)

// A guardClass is a bitmask of the invariant classes a //lint:guard
// annotation places on a mutex field:
//
//	//lint:guard journal     no journal append/fsync while this lock is held
//	//lint:guard io          no logging or network/HTTP writes while held
//	//lint:guard journal,io  both
type guardClass uint8

const (
	guardJournal guardClass = 1 << iota
	guardIO
)

var guardClassNames = map[string]guardClass{
	"journal": guardJournal,
	"io":      guardIO,
}

// guardProblem is a malformed //lint:guard annotation, reported (once, by
// the journallock analyzer) so broken annotations cannot silently disable
// enforcement.
type guardProblem struct {
	pos token.Pos
	msg string
}

// collectGuards scans the package for //lint:guard annotations on mutex
// struct fields and package-level mutex variables, returning the guarded
// objects and any malformed annotations.
func collectGuards(pass *framework.Pass) (map[types.Object]guardClass, []guardProblem) {
	guards := map[types.Object]guardClass{}
	var problems []guardProblem

	addField := func(names []*ast.Ident, typ ast.Expr, comments ...*ast.CommentGroup) {
		cls, pos, ok := guardDirective(comments)
		if !ok {
			return
		}
		if cls == 0 {
			problems = append(problems, guardProblem{pos, "//lint:guard names no valid class: want journal, io or journal,io"})
			return
		}
		if !isMutexType(pass.TypesInfo.TypeOf(typ)) {
			problems = append(problems, guardProblem{pos, "//lint:guard must annotate a sync.Mutex or sync.RWMutex"})
			return
		}
		if len(names) == 0 {
			problems = append(problems, guardProblem{pos, "//lint:guard cannot annotate an embedded mutex: name the field"})
			return
		}
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				guards[obj] |= cls
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						addField(field.Names, field.Type, field.Doc, field.Comment)
					}
				case *ast.ValueSpec:
					if gd.Tok != token.VAR || spec.Type == nil {
						continue
					}
					addField(spec.Names, spec.Type, gd.Doc, spec.Doc, spec.Comment)
				}
			}
		}
	}
	return guards, problems
}

// guardDirective extracts a //lint:guard directive from the comment groups,
// returning the parsed class mask (0 if every named class is unknown) and
// the directive's position.
func guardDirective(groups []*ast.CommentGroup) (guardClass, token.Pos, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:guard")
			if !ok {
				continue
			}
			// Fixture `// want` markers embedded in the comment are
			// harness expectations, not part of the directive.
			if i := strings.Index(rest, "// want"); i >= 0 {
				rest = rest[:i]
			}
			var cls guardClass
			for _, tok := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				cls |= guardClassNames[tok]
			}
			return cls, c.Pos(), true
		}
	}
	return 0, token.NoPos, false
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockOpKind classifies a call as a lock acquisition, a release, or neither.
type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp resolves calls of the form recv.mu.Lock() / mu.RLock() /
// recv.mu.Unlock() against the guarded-object set.
func lockOp(info *types.Info, guards map[types.Object]guardClass, call *ast.CallExpr) (types.Object, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, opNone
	}
	obj := receiverObject(info, sel.X)
	if obj == nil {
		return nil, opNone
	}
	if _, guarded := guards[obj]; !guarded {
		return nil, opNone
	}
	return obj, kind
}

// receiverObject resolves the mutex expression of a lock call (`mu` in
// `m.mu.Lock()`) to its declared object: a struct field or a variable.
func receiverObject(info *types.Info, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return receiverObject(info, x.X)
		}
	}
	return nil
}

// trackLocks walks one function body in source order, maintaining the set
// of guarded mutexes currently held, and invokes onCall for every call
// expression evaluated while at least one is held. Nested function literals
// are skipped — each is tracked independently via eachFuncBody, since a
// closure's execution time is unrelated to its lexical position.
//
// The analysis is a deliberate linear, source-order approximation of the
// control flow: Lock() adds the mutex to the held set, Unlock() removes it,
// and `defer mu.Unlock()` (directly or inside a deferred closure) keeps it
// held through the end of the body. That matches the repository's lock
// idioms; genuinely branch-dependent locking can be annotated with
// //lint:allow where the approximation over-reports.
func trackLocks(info *types.Info, guards map[types.Object]guardClass, body *ast.BlockStmt, onCall func(call *ast.CallExpr, held guardClass)) {
	held := map[types.Object]bool{}
	heldMask := func() guardClass {
		var m guardClass
		for obj, on := range held {
			if on {
				m |= guards[obj]
			}
		}
		return m
	}

	// visit walks n; inDefer suppresses Unlock removal, modelling that a
	// deferred release happens only when the function returns.
	var visit func(n ast.Node, inDefer bool)
	visit = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				visit(n.Call, true)
				return false
			case *ast.GoStmt:
				// The spawned goroutine does not hold the caller's locks;
				// only the argument expressions are evaluated here.
				for _, arg := range n.Call.Args {
					visit(arg, inDefer)
				}
				return false
			case *ast.CallExpr:
				if obj, kind := lockOp(info, guards, n); kind != opNone {
					switch kind {
					case opLock:
						held[obj] = true
					case opUnlock:
						if !inDefer {
							delete(held, obj)
						}
					}
					return true
				}
				if mask := heldMask(); mask != 0 {
					onCall(n, mask)
				}
				return true
			}
			return true
		})
	}
	visit(body, false)
}

// eachFuncBody invokes fn for every independently executing function body
// in the file: declared functions/methods and every function literal.
func eachFuncBody(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}
