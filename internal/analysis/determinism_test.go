package analysis_test

import (
	"testing"

	"nasaic/internal/analysis"
	"nasaic/internal/analysis/framework"
)

// TestDeterminismFixtures proves the determinism analyzer fires on every
// known bug shape inside a result-affecting package: wall clocks, global
// math/rand, math.FMA, and order-sensitive map iteration — and stays quiet
// on the deterministic counterparts (seeded streams, collect-then-sort,
// integer accumulation, slice iteration).
func TestDeterminismFixtures(t *testing.T) {
	framework.RunFixture(t, "testdata", "a/internal/sched", analysis.Determinism)
}

// TestDeterminismOutOfScope proves the same shapes produce no diagnostics
// outside the result-affecting package set.
func TestDeterminismOutOfScope(t *testing.T) {
	framework.RunFixture(t, "testdata", "a/notresult", analysis.Determinism)
}
