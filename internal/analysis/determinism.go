package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"nasaic/internal/analysis/framework"
)

// resultPkgs are the packages whose outputs feed results, journal records or
// rendered tables — the bit-identical-everywhere surface. The determinism
// analyzer enforces its rules only inside these (suffix-matched, so test
// fixtures scope identically).
var resultPkgs = []string{
	"internal/sched",
	"internal/core",
	"internal/nn",
	"internal/rl",
	"internal/maestro",
	"internal/stats",
}

// Determinism rejects sources of run-to-run or host-to-host divergence in
// result-affecting packages: wall clocks, the global math/rand stream,
// fused multiply-add, and map iteration whose order can leak into results.
var Determinism = &framework.Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in result-affecting packages

Flags, inside ` + "`internal/{sched,core,nn,rl,maestro,stats}`" + `:
wall-clock reads (time.Now/Since/Until), global math/rand functions
(seeded process-wide; use stats.RNG streams), math.FMA (fuses with a
different rounding than separate multiply+add, so results differ across
architectures), and range-over-map loops whose body is order-sensitive:
appending to a slice that is not sorted afterwards, sending on a channel,
accumulating floats or strings with compound assignment (float addition
is not associative), or returning a value derived from the iteration
variables. Wall-clock call sites that only feed metrics or backoff can be
suppressed with //lint:allow determinism <reason>.`,
	Run: runDeterminism,
}

func runDeterminism(pass *framework.Pass) error {
	if !framework.InAnyPkg(pass.PkgPath, resultPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
		})
	}
	return nil
}

func checkDeterminismCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "wall-clock time.%s in a result-affecting package: results must be bit-identical across runs and hosts", name)
		}
	case "math":
		if name == "FMA" {
			pass.Reportf(call.Pos(), "math.FMA rounds differently from separate multiply+add and is not used by the portable kernels; results would diverge across architectures")
		}
	case "math/rand", "math/rand/v2":
		if fn.Signature().Recv() != nil {
			return // methods on an explicit *rand.Rand stream are fine
		}
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors over explicit seeds/sources
		}
		pass.Reportf(call.Pos(), "global math/rand.%s draws from the shared process-wide stream: use a seeded stats.RNG (or rand.New) so worker interleaving cannot change results", name)
	}
}

// checkMapRange flags order-sensitive bodies of range-over-map loops.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	info := pass.TypesInfo
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	// The loop's iteration variables; a returned value mentioning one of
	// them is an order-dependent choice.
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}

	rest := stmtsAfter(stack, rng)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: receivers observe map iteration order; iterate a sorted key slice instead")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsAny(info, res, iterVars) {
					pass.Reportf(n.Pos(), "return inside range over map depends on which entry is visited first; iterate sorted keys so the returned value is deterministic")
					break
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, n, rest)
		}
		return true
	})
}

// checkMapRangeAssign flags order-sensitive accumulation statements inside
// a map-range body. rest is the statement tail following the loop in its
// enclosing block, used to excuse the collect-then-sort idiom.
func checkMapRangeAssign(pass *framework.Pass, as *ast.AssignStmt, rest []ast.Stmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		t := info.TypeOf(as.Lhs[0])
		if t == nil {
			return
		}
		if b, ok := t.Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsFloat != 0 || b.Info()&types.IsComplex != 0:
				pass.Reportf(as.Pos(), "floating-point accumulation inside range over map: float addition is not associative, so iteration order changes the sum; iterate sorted keys")
			case as.Tok == token.ADD_ASSIGN && b.Info()&types.IsString != 0:
				pass.Reportf(as.Pos(), "string concatenation inside range over map concatenates in iteration order; iterate sorted keys")
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) {
				continue
			}
			var target types.Object
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					target = info.ObjectOf(id)
				}
			}
			if target != nil && sortedLater(info, rest, target) {
				continue // collect-then-sort: deterministic overall
			}
			pass.Reportf(as.Pos(), "append inside range over map records entries in iteration order; sort the result afterwards or iterate sorted keys")
		}
	}
}

// isBuiltinAppend reports whether call invokes the append built-in.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether some statement in rest passes obj to a
// sort.* or slices.Sort* call, excusing the collect-then-sort idiom.
func sortedLater(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := framework.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				if mentionsAny(info, arg, map[types.Object]bool{obj: true}) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsAny reports whether expr references any object in objs.
func mentionsAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmtsAfter locates n's enclosing statement within the innermost block on
// the stack and returns the statements that follow it.
func stmtsAfter(stack []ast.Node, n ast.Stmt) []ast.Stmt {
	var target ast.Stmt = n
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch blk := stack[i].(type) {
		case *ast.BlockStmt:
			list = blk.List
		case *ast.CaseClause:
			list = blk.Body
		case *ast.CommClause:
			list = blk.Body
		case *ast.LabeledStmt:
			target = blk // a labeled loop is indexed by its label statement
			continue
		default:
			continue
		}
		for j, st := range list {
			if st == target {
				return list[j+1:]
			}
		}
	}
	return nil
}

// inspectWithStack is ast.Inspect with the path of ancestor nodes.
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
