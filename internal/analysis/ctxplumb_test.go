package analysis_test

import (
	"testing"

	"nasaic/internal/analysis"
	"nasaic/internal/analysis/framework"
)

// TestCtxPlumbFixtures proves the ctxplumb analyzer flags detached
// contexts and exported loop-bearing functions that ignore their ctx,
// while accepting polling loops, delegating loops, unexported helpers,
// loop-free functions and reasoned allows.
func TestCtxPlumbFixtures(t *testing.T) {
	framework.RunFixture(t, "testdata", "a/internal/cluster", analysis.CtxPlumb)
}
