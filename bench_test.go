// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations of the framework's design choices.
// Each experiment benchmark regenerates its table/figure at the reduced
// QuickBudget (shapes preserved; see EXPERIMENTS.md) and prints the rows the
// paper reports on its first iteration, so
//
//	go test -bench=. -benchmem
//
// both times the pipelines and reproduces the results. Key scalar outcomes
// are attached as custom benchmark metrics (best_weighted_pct etc.).
package nasaic

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"nasaic/internal/core"
	"nasaic/internal/dataflow"
	"nasaic/internal/dnn"
	"nasaic/internal/experiments"
	"nasaic/internal/maestro"
	"nasaic/internal/sched"
	"nasaic/internal/search"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

var (
	printTable1 sync.Once
	printTable2 sync.Once
	printFig1   sync.Once
	printFig6   [3]sync.Once
)

// reportSearchStats attaches the hardware-evaluation cache metrics of a
// table/figure regeneration: how many cost-model + HAP computations actually
// ran (hw_evals), what share of requests the evalcache layer absorbed
// (hw_cache_hit_pct), and what share of the remaining cost-model traffic the
// evaluator's per-layer memo served (layer_cost_hit_pct). See EXPERIMENTS.md
// for how to read them.
func reportSearchStats(b *testing.B, st experiments.SearchStats) {
	b.ReportMetric(float64(st.HWEvals), "hw_evals")
	b.ReportMetric(st.HitPct(), "hw_cache_hit_pct")
	b.ReportMetric(st.LayerHitPct(), "layer_cost_hit_pct")
}

// BenchmarkTable1 regenerates Table I: NAS→ASIC vs ASIC→HW-NAS vs NASAIC on
// workloads W1 and W2.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, stats, err := experiments.Table1(context.Background(), experiments.QuickBudget())
		if err != nil {
			b.Fatal(err)
		}
		printTable1.Do(func() {
			fmt.Println("\n=== Table I (QuickBudget reproduction) ===")
			experiments.RenderTable1(os.Stdout, rows)
		})
		var nasaicW1 float64
		for _, r := range rows {
			if r.Workload == "W1" && r.Approach == "NASAIC" {
				for _, d := range r.Rows {
					nasaicW1 += d.Accuracy / float64(len(r.Rows))
				}
			}
		}
		b.ReportMetric(100*nasaicW1, "W1_nasaic_avg_acc_pct")
		reportSearchStats(b, stats)
	}
}

// BenchmarkTable1NoCache is the cache-disabled control for BenchmarkTable1:
// identical rows, higher hw_evals, and the wall-clock delta quantifies the
// evalcache layer's win on the full Table I pipeline.
func BenchmarkTable1NoCache(b *testing.B) {
	budget := experiments.QuickBudget()
	budget.DisableHWCache = true
	for i := 0; i < b.N; i++ {
		_, stats, err := experiments.Table1(context.Background(), budget)
		if err != nil {
			b.Fatal(err)
		}
		reportSearchStats(b, stats)
	}
}

// BenchmarkTable1SharedMemo is the warm-start variant of BenchmarkTable1:
// the layer-cost memo is process-wide and the accuracy memo spans every
// approach, so all searches after the first start warm. Rows are identical;
// layer_cost_hit_pct is the warm-start rate the shared memo achieves and
// the ns/op delta against BenchmarkTable1 is its wall-clock win.
func BenchmarkTable1SharedMemo(b *testing.B) {
	budget := experiments.QuickBudget()
	budget.SharedMemo = true
	for i := 0; i < b.N; i++ {
		_, stats, err := experiments.Table1(context.Background(), budget)
		if err != nil {
			b.Fatal(err)
		}
		reportSearchStats(b, stats)
	}
}

// BenchmarkTable2 regenerates Table II: single vs homogeneous vs
// heterogeneous accelerator configurations on W3.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, stats, err := experiments.Table2(context.Background(), experiments.QuickBudget())
		if err != nil {
			b.Fatal(err)
		}
		printTable2.Do(func() {
			fmt.Println("\n=== Table II (QuickBudget reproduction) ===")
			experiments.RenderTable2(os.Stdout, rows)
		})
		b.ReportMetric(100*rows[len(rows)-1].Rows[0].Accuracy, "hetero_best_acc_pct")
		reportSearchStats(b, stats)
	}
}

// BenchmarkTable2NoCache is the cache-disabled control for BenchmarkTable2.
func BenchmarkTable2NoCache(b *testing.B) {
	budget := experiments.QuickBudget()
	budget.DisableHWCache = true
	for i := 0; i < b.N; i++ {
		_, stats, err := experiments.Table2(context.Background(), budget)
		if err != nil {
			b.Fatal(err)
		}
		reportSearchStats(b, stats)
	}
}

// BenchmarkFig1 regenerates the motivating CIFAR-10 design-space study.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig1(context.Background(), experiments.QuickBudget())
		if err != nil {
			b.Fatal(err)
		}
		printFig1.Do(func() {
			fmt.Println("\n=== Fig. 1 (QuickBudget reproduction) ===")
			experiments.RenderFig1(os.Stdout, d)
		})
		b.ReportMetric(100*d.OptimalAcc, "mc_optimal_acc_pct")
		feasible := 0
		for _, p := range d.NASASIC {
			if p.Feasible {
				feasible++
			}
		}
		b.ReportMetric(float64(feasible), "nas_asic_feasible_points")
	}
}

func benchFig6(b *testing.B, idx int, w workload.Workload) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig6(context.Background(), w, experiments.QuickBudget())
		if err != nil {
			b.Fatal(err)
		}
		printFig6[idx].Do(func() {
			fmt.Printf("\n=== Fig. 6 %s (QuickBudget reproduction) ===\n", w.Name)
			experiments.RenderFig6(os.Stdout, d)
		})
		b.ReportMetric(100*d.Best.Weighted, "best_weighted_pct")
		b.ReportMetric(float64(len(d.Explored)), "explored_solutions")
		reportSearchStats(b, d.Stats)
	}
}

// BenchmarkFig6W1 regenerates the left panel of Fig. 6 (CIFAR-10 + Nuclei).
func BenchmarkFig6W1(b *testing.B) { benchFig6(b, 0, workload.W1()) }

// BenchmarkFig6W2 regenerates the middle panel of Fig. 6 (CIFAR-10 + STL-10).
func BenchmarkFig6W2(b *testing.B) { benchFig6(b, 1, workload.W2()) }

// BenchmarkFig6W3 regenerates the right panel of Fig. 6 (CIFAR-10 x2).
func BenchmarkFig6W3(b *testing.B) { benchFig6(b, 2, workload.W3()) }

// --- Ablations of the framework's design choices (DESIGN.md §5.4) ---------

func runW3Ablation(b *testing.B, mutate func(*core.Config)) float64 {
	cfg := core.DefaultConfig()
	cfg.Episodes = 120
	cfg.Seed = 5
	mutate(&cfg)
	x, err := core.New(workload.W3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	res := x.Run()
	if res.Best == nil {
		return 0
	}
	return res.Best.Weighted
}

// BenchmarkAblationFull is the reference point for the search ablations.
func BenchmarkAblationFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(*core.Config) {})
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationNoReplay disables self-imitation replay.
func BenchmarkAblationNoReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(c *core.Config) { c.ReplayCoef = 0 })
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationNoRefine disables the coordinate-descent exploit phase.
func BenchmarkAblationNoRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(c *core.Config) { c.Refine = false })
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationNoEntropy disables entropy regularization.
func BenchmarkAblationNoEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(c *core.Config) { c.EntropyCoef = 0 })
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationNoEarlyPruning evaluates accuracy on every episode
// (HWSteps=0 keeps only the combined sample, removing the optimizer
// selector's hardware-first exploration).
func BenchmarkAblationNoHWSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(c *core.Config) { c.HWSteps = 0 })
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationSeqController swaps the controller's lockstep batched
// sampling/BPTT for the sequential matrix-vector path. The search outcome is
// bit-identical to BenchmarkAblationFull (enforced by the internal/rl
// differential tests and core's determinism suite); the ns/op delta is the
// batched fast path's wall-clock win on a full exploration.
func BenchmarkAblationSeqController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(c *core.Config) { c.BatchedController = false })
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationNoHWCache disables the hardware-evaluation cache. The
// search outcome is bit-identical to BenchmarkAblationFull (the cache only
// memoizes a pure function); the ns/op delta is the cache's wall-clock win
// and hw_evals shows the computations it avoided.
func BenchmarkAblationNoHWCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := runW3Ablation(b, func(c *core.Config) { c.HWCache = false })
		b.ReportMetric(100*w, "best_weighted_pct")
	}
}

// BenchmarkAblationEvolution swaps the RNN controller for the evolutionary
// optimizer at a matched evaluation budget (the paper's §IV note that other
// optimizers apply to the same reward).
func BenchmarkAblationEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = 5
		x, err := core.New(workload.W3(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ec := core.DefaultEvolutionConfig()
		ec.Generations = 26 // ~120 episodes x 11 evals / 50 pop
		res := x.RunEvolution(ec)
		if res.Best != nil {
			b.ReportMetric(100*res.Best.Weighted, "best_weighted_pct")
		}
	}
}

// BenchmarkAblationExtendedTemplates widens the template library with the
// systolic extension (dataflow.ExtendedStyles) — does a fourth dataflow
// improve the co-design optimum beyond the paper's {shi, dla, rs} set?
func BenchmarkAblationExtendedTemplates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Episodes = 120
		cfg.Seed = 5
		cfg.HW.Styles = append([]dataflow.Style(nil), dataflow.ExtendedStyles...)
		x, err := core.New(workload.W3(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := x.Run()
		if res.Best != nil {
			b.ReportMetric(100*res.Best.Weighted, "best_weighted_pct")
		}
	}
}

// --- HAP solver ablation ---------------------------------------------------

func hapInstance() sched.Problem {
	cost := maestro.DefaultConfig()
	net, err := dnn.BuildResNet(dnn.ResNetConfig{
		Name: "r", InputX: 32, InputY: 32, InputC: 3, Classes: 10,
		FN0: 16, Blocks: []dnn.ResBlock{{FN: 64, SK: 1}, {FN: 128, SK: 1}, {FN: 128, SK: 0}},
	})
	if err != nil {
		panic(err)
	}
	p := sched.Problem{NumAccels: 2, Deadline: 4e5}
	ch := sched.Chain{Name: "net"}
	for _, l := range net.ComputeLayers() {
		dla := cost.LayerCost(l, dataflow.NVDLA, 1024, 32)
		shi := cost.LayerCost(l, dataflow.Shidiannao, 1024, 32)
		ch.Layers = append(ch.Layers, sched.Layer{Name: l.Name, Options: []sched.Option{
			{Cycles: dla.Cycles, EnergyNJ: dla.EnergyNJ, BufferBytes: dla.BufferBytes},
			{Cycles: shi.Cycles, EnergyNJ: shi.EnergyNJ, BufferBytes: shi.BufferBytes},
		}})
	}
	p.Chains = []sched.Chain{ch}
	return p
}

// BenchmarkHAPHeuristic times the paper's accelerated scheduler on a
// realistic ResNet-9 cost table.
func BenchmarkHAPHeuristic(b *testing.B) {
	p := hapInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Heuristic(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EnergyNJ, "energy_nj")
		}
	}
}

// BenchmarkHAPExhaustive times the optimal reference (the paper's ILP
// stand-in) on the same instance, quantifying the heuristic's speedup.
func BenchmarkHAPExhaustive(b *testing.B) {
	p := hapInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Exhaustive(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EnergyNJ, "energy_nj")
		}
	}
}

// BenchmarkHAPBranchAndBound times the pruned exact solver, which extends
// optimality to instances beyond Exhaustive's enumeration limit.
func BenchmarkHAPBranchAndBound(b *testing.B) {
	p := hapInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, complete, err := sched.BranchAndBound(p, 1<<22)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EnergyNJ, "energy_nj")
			if !complete {
				b.ReportMetric(1, "budget_exhausted")
			}
		}
	}
}

// --- Microbenchmarks of the hot paths --------------------------------------

// BenchmarkLayerCost times one cost-model query (the innermost operation of
// the whole search).
func BenchmarkLayerCost(b *testing.B) {
	cfg := maestro.DefaultConfig()
	l := dnn.Layer{Name: "c", Op: dnn.Conv, K: 128, C: 128, R: 3, S: 3, X: 16, Y: 16, Stride: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.LayerCost(l, dataflow.NVDLA, 1024, 32)
	}
}

// BenchmarkHWEval times one full hardware evaluation (cost table + HAP +
// area) for a W1-sized workload.
func BenchmarkHWEval(b *testing.B) {
	w := workload.W1()
	cfg := core.DefaultConfig()
	e, err := core.NewEvaluator(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	nets := make([]*dnn.Network, len(w.Tasks))
	for i, t := range w.Tasks {
		nets[i] = t.Space.MustDecode(t.Space.Largest())
	}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		des := search.RandomDesign(cfg.HW, rng)
		_ = e.HWEval(nets, des)
	}
}

// BenchmarkControllerEpisode times one controller sample + policy-gradient
// update at the experiment's decision-sequence length.
func BenchmarkControllerEpisode(b *testing.B) {
	w := workload.W1()
	cfg := core.DefaultConfig()
	cfg.Episodes = 1
	cfg.HWSteps = 0
	cfg.Refine = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := core.New(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = x.Run()
	}
}
