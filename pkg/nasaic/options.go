package nasaic

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"nasaic/internal/cachefile"
	"nasaic/internal/core"
	"nasaic/internal/evalcache"
	"nasaic/internal/maestro"
)

// Optimizer selects the search strategy of one run.
type Optimizer string

const (
	// OptimizerRL is the paper's RNN-controller REINFORCE search.
	OptimizerRL Optimizer = "rl"
	// OptimizerEA is the evolutionary alternative sharing the same
	// decision encoding, evaluator and reward.
	OptimizerEA Optimizer = "ea"
)

// settings is the resolved configuration of one Run call.
type settings struct {
	workload  string
	cfg       core.Config
	optimizer Optimizer
	shared    *SharedMemos
	handlers  []func(Event)
	channels  []chan<- Event
	errs      []error
}

// Option configures a Run call. Options are functional and applied in order;
// invalid values surface as an error from Run, never a panic.
type Option func(*settings)

func defaultSettings() settings {
	return settings{
		workload:  "W1",
		cfg:       core.DefaultConfig(),
		optimizer: OptimizerRL,
	}
}

// WithWorkload selects the workload to explore: W1 (CIFAR-10 + Nuclei), W2
// (CIFAR-10 + STL-10) or W3 (CIFAR-10 ×2). Default W1.
func WithWorkload(name string) Option {
	return func(s *settings) { s.workload = name }
}

// WithEpisodes sets β, the number of exploration episodes (default 500).
func WithEpisodes(n int) Option {
	return func(s *settings) { s.cfg.Episodes = n }
}

// WithHWSteps sets φ, the hardware-only exploration steps per episode
// (default 10).
func WithHWSteps(n int) Option {
	return func(s *settings) { s.cfg.HWSteps = n }
}

// WithSeed sets the random seed; runs are deterministic per seed.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.cfg.Seed = seed }
}

// WithWorkers bounds the goroutines used for parallel hardware evaluation;
// <=0 selects NumCPU (capped at 16).
func WithWorkers(n int) Option {
	return func(s *settings) { s.cfg.Workers = n }
}

// WithOptimizer selects the search strategy (default OptimizerRL).
func WithOptimizer(o Optimizer) Option {
	return func(s *settings) {
		if o != OptimizerRL && o != OptimizerEA {
			s.errs = append(s.errs, fmt.Errorf("nasaic: unknown optimizer %q (want %q or %q)", o, OptimizerRL, OptimizerEA))
			return
		}
		s.optimizer = o
	}
}

// WithRefine toggles the feasibility-preserving coordinate-descent exploit
// phase after the search loop (default on).
func WithRefine(on bool) Option {
	return func(s *settings) { s.cfg.Refine = on }
}

// WithHWCache toggles the sharded hardware-evaluation cache (default on).
// Results are bit-identical either way; only wall clock changes.
func WithHWCache(on bool) Option {
	return func(s *settings) { s.cfg.HWCache = on }
}

// WithLayerCostMemo toggles the per-layer cost-model memo (default on).
// Results are bit-identical either way.
func WithLayerCostMemo(on bool) Option {
	return func(s *settings) { s.cfg.LayerCostMemo = on }
}

// WithProcessSharedLayerMemo promotes the layer-cost memo to the
// process-wide one, warm-starting repeat runs (default off). Results are
// bit-identical either way.
func WithProcessSharedLayerMemo(on bool) Option {
	return func(s *settings) { s.cfg.ShareLayerMemo = on }
}

// WithCacheDir points the run's layer-cost memo and hardware-evaluation
// cache at a persistent on-disk warm tier: matching snapshots under dir are
// loaded before the search and written back (atomically) when Run returns,
// so a second process pointed at the same directory starts with ~100% memo
// hit rates from the first episode. Snapshot files are versioned and
// checksummed and keyed by the cost-model calibration; any missing, torn,
// corrupt or mismatched file silently degrades to a cold start. The warm
// tier memoizes pure functions and round-trips values bit-exactly, so it
// changes work counters (hits vs computes), never results. When combined
// with WithSharedMemos, the bundle is warm-loaded from dir once per process
// and saved back after each run.
func WithCacheDir(dir string) Option {
	return func(s *settings) { s.cfg.CacheDir = dir }
}

// WithBatchedController toggles the controller's lockstep batched
// policy-gradient fast path (default on). The batched path is bit-identical
// to the sequential one.
func WithBatchedController(on bool) Option {
	return func(s *settings) { s.cfg.BatchedController = on }
}

// WithSolverTuning overrides the HAP solver's parallel-scan thresholds: the
// minimum candidate moves per heuristic refinement round and the minimum
// enumeration size per exhaustive solve before the scan fans out across
// workers, plus the per-solve worker-pool bound. Zero keeps the respective
// built-in default. Results are bit-identical for any setting.
func WithSolverTuning(moveScanMin, exhaustSplitMin, maxWorkers int) Option {
	return func(s *settings) {
		s.cfg.SolverMoveScanMin = moveScanMin
		s.cfg.SolverExhaustSplitMin = exhaustSplitMin
		s.cfg.SolverMaxWorkers = maxWorkers
	}
}

// WithSolverCheckpoints toggles the HAP heuristic's checkpointed move-scan
// simulator, which resumes each candidate move from the moved layer's
// snapshot instead of replaying the whole schedule (default on). The
// checkpointed path is bit-identical to full re-simulation; only wall clock
// changes.
func WithSolverCheckpoints(on bool) Option {
	return func(s *settings) { s.cfg.SolverNoCheckpoint = !on }
}

// WithEventHandler subscribes fn to per-episode progress events. Handlers
// run synchronously on the exploration goroutine in subscription order; a
// slow handler slows the run down but never changes its results.
func WithEventHandler(fn func(Event)) Option {
	return func(s *settings) {
		if fn == nil {
			s.errs = append(s.errs, fmt.Errorf("nasaic: WithEventHandler(nil)"))
			return
		}
		s.handlers = append(s.handlers, fn)
	}
}

// WithEventChannel streams per-episode progress events into ch. Sends are
// blocking, so the receiver paces the run — but once the run's context is
// done, undeliverable events are dropped instead of wedging the cancelled
// run on an abandoned channel. Run does not close the channel.
func WithEventChannel(ch chan<- Event) Option {
	return func(s *settings) {
		if ch == nil {
			s.errs = append(s.errs, fmt.Errorf("nasaic: WithEventChannel(nil)"))
			return
		}
		s.channels = append(s.channels, ch)
	}
}

// SharedMemos bundles the caches several runs in one process may share: the
// hardware-evaluation cache, the accuracy-predictor memo, and (by enabling
// the process-wide table) the layer-cost memo. All three memoize pure
// functions, so sharing changes which run pays for a computation but never
// any result.
type SharedMemos struct {
	acc *core.AccuracyMemo
	hw  *evalcache.Cache[core.HWMetrics]

	loadOnce sync.Once // warm tier is loaded at most once per bundle
}

// NewSharedMemos returns an empty shared-memo bundle.
func NewSharedMemos() *SharedMemos {
	return &SharedMemos{
		acc: core.NewAccuracyMemo(),
		hw:  evalcache.New[core.HWMetrics](evalcache.Options{}),
	}
}

// HWCacheStats snapshots the shared hardware-evaluation cache counters.
func (m *SharedMemos) HWCacheStats() evalcache.Stats { return m.hw.Stats() }

// AccuracyMemoSize reports the number of memoized architectures.
func (m *SharedMemos) AccuracyMemoSize() int { return m.acc.Size() }

// WithSharedMemos routes the run's hardware-evaluation cache and accuracy
// memo through m and enables the process-wide layer-cost memo, so concurrent
// or consecutive runs warm-start each other.
func WithSharedMemos(m *SharedMemos) Option {
	return func(s *settings) {
		if m == nil {
			s.errs = append(s.errs, fmt.Errorf("nasaic: WithSharedMemos(nil)"))
			return
		}
		s.shared = m
		s.cfg.AccMemo = m.acc
		s.cfg.SharedHWCache = m.hw
		s.cfg.ShareLayerMemo = true
	}
}

// sharedLayerMemo returns the process-wide layer-cost memo a bundle-routed
// run uses (the facade never varies the calibration, so there is exactly
// one).
func sharedLayerMemo() *maestro.CostMemo {
	return maestro.SharedCostMemo(core.DefaultConfig().Cost)
}

// sharedHWKey is the invalidation identity of the bundle's cross-workload
// hardware-evaluation cache. The fixed "shared" scope mirrors the
// in-process sharing semantics: entries are keyed by the full
// ⟨design fingerprint, task-signature tuple⟩, which distinguishes workloads.
func sharedHWKey() string {
	return core.HWCacheConfigKey(core.DefaultConfig(), "shared")
}

// LoadDir warms the bundle from the persistent tier under dir: the shared
// hardware-evaluation cache and the process-wide layer-cost memo. It returns
// the number of entries loaded into each; every file-level failure —
// missing, torn, corrupt, stale version, different calibration — loads
// nothing and returns zero, which is always safe (cold start, identical
// results). A bundle loads at most once: later calls (including the lazy
// load a WithCacheDir+WithSharedMemos Run performs) are no-ops returning
// zero.
func (m *SharedMemos) LoadDir(dir string) (layerEntries, hwEntries int) {
	m.loadOnce.Do(func() {
		cm := sharedLayerMemo()
		layerEntries, _ = cm.LoadFile(cm.CacheFile(dir))
		key := sharedHWKey()
		hwEntries, _ = evalcache.LoadFile(m.hw, filepath.Join(dir, cachefile.Name("hweval", key)), key)
	})
	return layerEntries, hwEntries
}

// SaveDir atomically snapshots the bundle — the shared hardware-evaluation
// cache and the process-wide layer-cost memo — into dir, so the next process
// starts warm. Safe to call periodically and at shutdown; each save replaces
// the previous snapshot via temp file + rename.
func (m *SharedMemos) SaveDir(dir string) error {
	cm := sharedLayerMemo()
	key := sharedHWKey()
	return errors.Join(
		cm.SaveFile(cm.CacheFile(dir)),
		evalcache.SaveFile(m.hw, filepath.Join(dir, cachefile.Name("hweval", key)), key),
	)
}
