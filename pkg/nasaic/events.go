package nasaic

import "encoding/json"

// EncodeEvent serializes one Event into its canonical JSON wire form — the
// payload of nasaicd's SSE `episode` frames and of the job journal's event
// records. DecodeEvent inverts it; the pair is the single
// encode/decode path shared by the HTTP layer, the durable journal and
// client helpers, so the wire and on-disk representations can never drift
// apart.
func EncodeEvent(e Event) ([]byte, error) {
	return json.Marshal(e)
}

// DecodeEvent parses one canonical JSON event payload back into an Event.
func DecodeEvent(data []byte) (Event, error) {
	var e Event
	err := json.Unmarshal(data, &e)
	return e, err
}
