// Package nasaic is the public, context-first API of the NASAIC
// co-exploration engine — a Go reproduction of "Co-Exploration of Neural
// Architectures and Heterogeneous ASIC Accelerator Designs Targeting
// Multiple Tasks" (Yang et al., DAC 2020).
//
// The central entry point is Run, which explores one of the paper's
// multi-task workloads and returns the best (architectures, accelerator)
// pair found:
//
//	res, err := nasaic.Run(ctx,
//		nasaic.WithWorkload("W1"),
//		nasaic.WithEpisodes(500),
//		nasaic.WithSeed(1),
//	)
//
// Cancellation and deadlines are honoured promptly: the context is threaded
// through the episode loop, the hardware-evaluation worker pool, and the HAP
// scheduler's solvers, and no goroutines are left behind. A cancelled Run
// returns the partial Result accumulated so far together with the context's
// error. Uncancelled runs are bit-identical for a fixed seed regardless of
// worker counts, caches, or event subscribers.
//
// Progress can be streamed per episode through WithEventHandler or
// WithEventChannel; each Event carries the episode's reward, the best-so-far
// solution, and the evaluator's cache/memo counters. Several concurrent runs
// inside one process can share evaluation caches and memos via
// NewSharedMemos/WithSharedMemos (the cached functions are pure, so sharing
// never changes results).
//
// The same package exposes the paper's evaluation artifacts (Table I/II,
// Fig. 1/6) as context-aware wrappers used by the cmd/compare and cmd/dse
// binaries, and the cmd/nasaicd HTTP service exposes Run as a job API
// (submit / stream / cancel) on top of this package.
package nasaic
