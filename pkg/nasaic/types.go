package nasaic

import (
	"fmt"
	"strings"

	"nasaic/internal/core"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// SubAccel is one sub-accelerator of a heterogeneous design.
type SubAccel struct {
	// Dataflow is the template style ("dla", "shi", "eye").
	Dataflow string `json:"dataflow"`
	// PEs is the number of processing elements.
	PEs int `json:"pes"`
	// BandwidthGBs is the NoC bandwidth in GB/s.
	BandwidthGBs int `json:"bandwidth_gbs"`
}

// String renders the paper's ⟨dataflow, #PEs, BW⟩ notation.
func (s SubAccel) String() string {
	return fmt.Sprintf("<%s, %d, %d>", s.Dataflow, s.PEs, s.BandwidthGBs)
}

// Design is a complete heterogeneous accelerator.
type Design struct {
	Subs []SubAccel `json:"subs"`
}

// String renders the sub-accelerator tuples in design order.
func (d Design) String() string {
	parts := make([]string, len(d.Subs))
	for i, s := range d.Subs {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// TaskResult is one task's outcome within a solution.
type TaskResult struct {
	// Name is the task's name within the workload (e.g. "classification").
	Name string `json:"name"`
	// Dataset and Metric identify what Accuracy measures (e.g. CIFAR-10
	// accuracy, Nuclei IoU).
	Dataset  string  `json:"dataset"`
	Metric   string  `json:"metric"`
	Accuracy float64 `json:"accuracy"`
	// Architecture renders the selected hyperparameters in the paper's
	// tuple notation; Choices are the raw option indices into the task's
	// search space.
	Architecture string `json:"architecture"`
	Choices      []int  `json:"choices"`
}

// Solution is one fully evaluated (architectures, accelerator) pair.
type Solution struct {
	// Episode is the exploration episode that produced the solution.
	Episode int          `json:"episode"`
	Design  Design       `json:"design"`
	Tasks   []TaskResult `json:"tasks"`
	// WeightedAccuracy is Eq. (2): the α-weighted sum of task accuracies.
	WeightedAccuracy float64 `json:"weighted_accuracy"`
	LatencyCycles    int64   `json:"latency_cycles"`
	EnergyNJ         float64 `json:"energy_nj"`
	AreaUM2          float64 `json:"area_um2"`
	Feasible         bool    `json:"feasible"`
}

// String renders a compact report line.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ep%d %s", s.Episode, s.Design)
	for _, t := range s.Tasks {
		fmt.Fprintf(&b, " %s=%.4f", t.Metric, t.Accuracy)
	}
	fmt.Fprintf(&b, " L=%.3g E=%.3g A=%.3g feasible=%v",
		float64(s.LatencyCycles), s.EnergyNJ, s.AreaUM2, s.Feasible)
	return b.String()
}

// Specs are the workload's unified design specifications ⟨LS, ES, AS⟩.
type Specs struct {
	LatencyCycles int64   `json:"latency_cycles"`
	EnergyNJ      float64 `json:"energy_nj"`
	AreaUM2       float64 `json:"area_um2"`
}

// String renders the paper's ⟨LS, ES, AS⟩ notation.
func (s Specs) String() string {
	return workload.Specs{LatencyCycles: s.LatencyCycles, EnergyNJ: s.EnergyNJ, AreaUM2: s.AreaUM2}.String()
}

// Stats reports the evaluator work a run performed.
type Stats struct {
	// Trainings counts accuracy-predictor trainings (memoized architectures
	// are never retrained).
	Trainings int `json:"trainings"`
	// HWRequests counts hardware evaluation requests; HWEvals the cost-model
	// + HAP computations actually performed; HWCacheHits the requests served
	// by the evaluation cache; HWDeduped the identical in-batch candidates
	// collapsed before worker fan-out.
	HWRequests  int `json:"hw_requests"`
	HWEvals     int `json:"hw_evals"`
	HWCacheHits int `json:"hw_cache_hits"`
	HWDeduped   int `json:"hw_deduped"`
	// LayerCostRequests/LayerCostHits report the per-layer cost-model memo.
	LayerCostRequests int `json:"layer_cost_requests"`
	LayerCostHits     int `json:"layer_cost_hits"`
	// PrunedEpisodes counts episodes whose training was skipped because no
	// explored hardware was feasible.
	PrunedEpisodes int `json:"pruned_episodes"`
}

// HWCacheHitPct returns the percentage of hardware requests served from the
// evaluation cache.
func (s Stats) HWCacheHitPct() float64 {
	return stats.Pct(int64(s.HWCacheHits), int64(s.HWRequests))
}

// LayerCostHitPct returns the percentage of cost-model queries served by the
// per-layer memo.
func (s Stats) LayerCostHitPct() float64 {
	return stats.Pct(int64(s.LayerCostHits), int64(s.LayerCostRequests))
}

// Result is the outcome of one co-exploration run.
type Result struct {
	Workload string `json:"workload"`
	Specs    Specs  `json:"specs"`
	// Episodes is the number of completed episodes (generations in EA
	// mode); smaller than requested when the run was cancelled.
	Episodes int `json:"episodes"`
	// Best is the highest weighted-accuracy feasible solution (nil when
	// none was found).
	Best *Solution `json:"best,omitempty"`
	// Explored are all feasible solutions, best first.
	Explored []*Solution `json:"explored,omitempty"`
	Stats    Stats       `json:"stats"`

	// explorer retains the engine handle for RenderSchedule; core the raw
	// result (both nil after JSON round-trips).
	explorer *core.Explorer
	core     *core.Result
}

// Event is one per-episode progress notification.
type Event struct {
	// Episode is the finished episode's index (generation in EA mode).
	Episode int     `json:"episode"`
	Reward  float64 `json:"reward"`
	// Feasible reports whether the episode found spec-satisfying hardware;
	// Pruned whether the training path was skipped entirely.
	Feasible bool `json:"feasible"`
	Pruned   bool `json:"pruned"`
	// HWEvals/HWCacheHits/HWDeduped are the episode's evaluation-cost
	// deltas (computations run, cache hits, in-batch dedups).
	HWEvals     int `json:"hw_evals"`
	HWCacheHits int `json:"hw_cache_hits"`
	HWDeduped   int `json:"hw_deduped"`
	// Explored is the running count of feasible solutions; Best the
	// best-so-far solution (nil before the first feasible one).
	Explored int       `json:"explored"`
	Best     *Solution `json:"best,omitempty"`
}
