package nasaic

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"nasaic/internal/core"
	"nasaic/internal/workload"
)

// quickOpts is a fast deterministic run used across the tests.
func quickOpts(extra ...Option) []Option {
	return append([]Option{
		WithWorkload("W3"),
		WithEpisodes(25),
		WithSeed(1),
		WithWorkers(4),
	}, extra...)
}

// fingerprint renders every result field that must be bit-stable.
func fingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ep=%d pruned=%d\n", r.Workload, r.Episodes, r.Stats.PrunedEpisodes)
	for _, s := range r.Explored {
		fmt.Fprintf(&b, "sol ep%d %s w=%.17g L=%d E=%.17g A=%.17g\n",
			s.Episode, s.Design, s.WeightedAccuracy, s.LatencyCycles, s.EnergyNJ, s.AreaUM2)
	}
	if r.Best != nil {
		fmt.Fprintf(&b, "best %s w=%.17g\n", r.Best.Design, r.Best.WeightedAccuracy)
	}
	return b.String()
}

// TestRunMatchesCore: the facade is a faithful view over the engine — same
// seed, bit-identical solutions and counters.
func TestRunMatchesCore(t *testing.T) {
	res, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Episodes = 25
	cfg.Seed = 1
	cfg.Workers = 4
	x, err := core.New(workload.W3(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := x.Run()

	if res.Best == nil || want.Best == nil {
		t.Fatalf("best missing: facade=%v core=%v", res.Best, want.Best)
	}
	if res.Best.WeightedAccuracy != want.Best.Weighted ||
		res.Best.LatencyCycles != want.Best.Latency ||
		res.Best.EnergyNJ != want.Best.EnergyNJ ||
		res.Best.AreaUM2 != want.Best.AreaUM2 ||
		res.Best.Design.String() != want.Best.Design.String() {
		t.Fatalf("facade best diverged from core:\n%+v\nvs\n%+v", res.Best, want.Best)
	}
	if len(res.Explored) != len(want.Explored) {
		t.Fatalf("explored count %d vs %d", len(res.Explored), len(want.Explored))
	}
	if res.Stats.HWEvals != want.HWEvals || res.Stats.Trainings != want.Trainings {
		t.Fatalf("stats diverged: %+v vs HWEvals=%d Trainings=%d", res.Stats, want.HWEvals, want.Trainings)
	}
}

// TestRunDeterministic: two identical runs are bit-identical, including with
// events subscribed (the hook must not perturb the search).
func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	b, err := Run(context.Background(), quickOpts(WithEventHandler(func(e Event) { events = append(events, e) }))...)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatalf("subscribed run diverged:\n%s\nvs\n%s", fingerprint(a), fingerprint(b))
	}
	if len(events) != 25 {
		t.Fatalf("got %d events, want 25", len(events))
	}
	for i, ev := range events {
		if ev.Episode != i {
			t.Fatalf("event %d carries episode %d", i, ev.Episode)
		}
	}
}

// TestRunEventChannel: channel delivery sees the same stream.
func TestRunEventChannel(t *testing.T) {
	ch := make(chan Event, 64)
	res, err := Run(context.Background(), quickOpts(WithEventChannel(ch))...)
	if err != nil {
		t.Fatal(err)
	}
	close(ch)
	n := 0
	var last Event
	for e := range ch {
		last = e
		n++
	}
	if n != 25 {
		t.Fatalf("channel got %d events, want 25", n)
	}
	if res.Best != nil && last.Best == nil {
		t.Fatal("final event missing best-so-far")
	}
}

// TestRunCancelled: cancellation mid-run returns the partial result and the
// context error, promptly and leak-free.
func TestRunCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := []Option{
		WithWorkload("W3"), WithEpisodes(5000), WithSeed(1), WithWorkers(4),
		WithEventHandler(func(e Event) {
			if e.Episode == 3 {
				cancel()
			}
		}),
	}
	start := time.Now()
	res, err := Run(ctx, opts...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("cancelled Run took %v", el)
	}
	if res == nil || res.Episodes != 4 {
		t.Fatalf("partial result episodes = %v, want 4", res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d vs base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunOptionErrors: invalid options surface as errors, not panics.
func TestRunOptionErrors(t *testing.T) {
	if _, err := Run(context.Background(), WithWorkload("W9")); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(context.Background(), WithOptimizer("annealing")); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	if _, err := Run(context.Background(), WithEventHandler(nil)); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := Run(context.Background(), WithEpisodes(0)); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

// TestSharedMemosWarmStart: consecutive runs through one bundle are
// bit-identical to cold runs and reuse each other's evaluations.
func TestSharedMemosWarmStart(t *testing.T) {
	cold, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharedMemos()
	warm1, err := Run(context.Background(), quickOpts(WithSharedMemos(m))...)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := Run(context.Background(), quickOpts(WithSharedMemos(m))...)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(cold) != fingerprint(warm1) || fingerprint(warm1) != fingerprint(warm2) {
		t.Fatal("shared-memo runs diverged from cold run")
	}
	if warm2.Stats.HWCacheHits <= warm1.Stats.HWCacheHits {
		t.Fatalf("second run not warm-started: hits %d vs %d",
			warm2.Stats.HWCacheHits, warm1.Stats.HWCacheHits)
	}
	if warm2.Stats.Trainings != 0 {
		t.Fatalf("second run retrained %d architectures despite shared accuracy memo", warm2.Stats.Trainings)
	}
}

// TestSolverTuningBitIdentical: forcing the solver's parallel paths on must
// not change any result.
func TestSolverTuningBitIdentical(t *testing.T) {
	a, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), quickOpts(WithSolverTuning(1, 2, 4))...)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatalf("solver tuning changed results:\n%s\nvs\n%s", fingerprint(a), fingerprint(b))
	}
}

// TestSolverCheckpointsBitIdentical: the checkpointed move-scan simulator
// (default on) and full per-move re-simulation must produce identical
// explorations end to end.
func TestSolverCheckpointsBitIdentical(t *testing.T) {
	a, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), quickOpts(WithSolverCheckpoints(false))...)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatalf("disabling solver checkpoints changed results:\n%s\nvs\n%s", fingerprint(a), fingerprint(b))
	}
}

// TestEvolutionOptimizer drives the EA path through the facade.
func TestEvolutionOptimizer(t *testing.T) {
	res, err := Run(context.Background(), quickOpts(WithOptimizer(OptimizerEA))...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("EA run found no feasible solution")
	}
}

// TestResultJSONRoundTrip: the result types are stable JSON.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if fingerprint(res) != fingerprint(&back) {
		t.Fatalf("JSON round-trip changed the result:\n%s\nvs\n%s", fingerprint(res), fingerprint(&back))
	}
}

// TestRenderSchedule smoke-tests the Gantt view of the best solution.
func TestRenderSchedule(t *testing.T) {
	res, err := Run(context.Background(), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Skip("no feasible solution in quick run")
	}
	var b strings.Builder
	if err := res.RenderSchedule(&b, 80); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Fatal("empty schedule rendering")
	}
}

// TestWorkloads lists the three paper workloads.
func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 {
		t.Fatalf("got %d workloads, want 3", len(ws))
	}
	for i, name := range []string{"W1", "W2", "W3"} {
		if ws[i].Name != name {
			t.Fatalf("workload %d is %s, want %s", i, ws[i].Name, name)
		}
		if len(ws[i].Tasks) != 2 {
			t.Fatalf("%s lists %d tasks, want 2", name, len(ws[i].Tasks))
		}
	}
}
