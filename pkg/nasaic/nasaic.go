package nasaic

import (
	"context"
	"errors"
	"fmt"
	"io"

	"nasaic/internal/core"
	"nasaic/internal/sched"
	"nasaic/internal/workload"
)

// Run executes one NASAIC co-exploration and returns the best identified
// (architectures, accelerator) pair together with every feasible solution
// found. It is deterministic in the seed: for a fixed option set an
// uncancelled Run returns bit-identical results regardless of worker count,
// caching, memo sharing, or event subscribers.
//
// The context is honoured promptly — it is checked every episode and
// threaded through the hardware-evaluation worker pool into the HAP solver
// worker pools, and cancellation leaks no goroutines. A cancelled or expired
// run returns the partial Result accumulated so far together with the
// context's error; callers that only care about complete runs can ignore the
// Result whenever err != nil.
func Run(ctx context.Context, opts ...Option) (*Result, error) {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	if len(s.errs) > 0 {
		return nil, errors.Join(s.errs...)
	}
	w, err := workload.ByName(s.workload)
	if err != nil {
		return nil, err
	}
	// Warm the shared bundle from the persistent tier before the evaluator is
	// built (once per bundle; later runs are already warm in-process).
	if s.cfg.CacheDir != "" && s.shared != nil {
		s.shared.LoadDir(s.cfg.CacheDir)
	}
	x, err := core.New(w, s.cfg)
	if err != nil {
		return nil, err
	}
	if len(s.handlers) > 0 || len(s.channels) > 0 {
		handlers := s.handlers
		channels := s.channels
		x.OnEpisode = func(ev core.EpisodeEvent) {
			e := convertEvent(w, ev)
			for _, h := range handlers {
				h(e)
			}
			for _, ch := range channels {
				// Block on the receiver while the run is live; once ctx is
				// done, drop rather than wedge the cancelled run on an
				// abandoned channel.
				select {
				case ch <- e:
				case <-ctx.Done():
				}
			}
		}
	}

	var (
		cres   *core.Result
		runErr error
	)
	switch s.optimizer {
	case OptimizerEA:
		ec := core.DefaultEvolutionConfig()
		// Match the RL budget: Population × Generations ≈ Episodes × (1+φ).
		ec.Generations = s.cfg.Episodes * (1 + s.cfg.HWSteps) / ec.Population
		if ec.Generations < 1 {
			ec.Generations = 1
		}
		cres, runErr = x.RunEvolutionContext(ctx, ec)
	default:
		cres, runErr = x.RunContext(ctx)
	}
	// Persist the warm tier even after a cancelled run: every resident entry
	// memoizes a pure function, so partial snapshots are as valid as full
	// ones. Save failures never fail the run — the tier is an accelerator,
	// not a dependency.
	if s.cfg.CacheDir != "" {
		_ = x.SaveCaches()
		if s.shared != nil {
			_ = s.shared.SaveDir(s.cfg.CacheDir)
		}
	}
	return convertResult(w, x, cres), runErr
}

// WorkloadInfo describes one selectable workload.
type WorkloadInfo struct {
	Name  string   `json:"name"`
	Specs Specs    `json:"specs"`
	Tasks []string `json:"tasks"`
}

// Workloads lists the workloads WithWorkload accepts.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range []workload.Workload{workload.W1(), workload.W2(), workload.W3()} {
		info := WorkloadInfo{Name: w.Name, Specs: convertSpecs(w.Specs)}
		for _, t := range w.Tasks {
			info.Tasks = append(info.Tasks, fmt.Sprintf("%s (%s)", t.Name, t.Dataset))
		}
		out = append(out, info)
	}
	return out
}

// RenderSchedule writes the best solution's layer-to-sub-accelerator Gantt
// chart (the map() and sch() of §III-➌ made visible) to w. It errors when
// the result has no feasible solution or was deserialized rather than
// produced by Run in this process.
func (r *Result) RenderSchedule(w io.Writer, width int) error {
	if r.Best == nil {
		return fmt.Errorf("nasaic: no feasible solution to schedule")
	}
	if r.explorer == nil || r.core == nil || r.core.Best == nil {
		return fmt.Errorf("nasaic: schedule rendering needs a Result produced by Run in this process")
	}
	best := r.core.Best
	problem, _, placements, err := r.explorer.Evaluator().Schedule(best.Networks, best.Design)
	if err != nil {
		return err
	}
	sched.RenderGantt(w, problem, placements, width)
	return nil
}

// DetachEngine drops the Result's reference to the exploration engine
// (evaluator, caches, controller, raw solutions), freeing its memory while
// keeping every exported field intact. RenderSchedule stops working after
// detaching. Long-lived holders of many Results — e.g. a job history —
// should detach once they no longer need the schedule view.
func (r *Result) DetachEngine() {
	r.explorer = nil
	r.core = nil
}

// convertSpecs mirrors the internal workload specs.
func convertSpecs(sp workload.Specs) Specs {
	return Specs{LatencyCycles: sp.LatencyCycles, EnergyNJ: sp.EnergyNJ, AreaUM2: sp.AreaUM2}
}

// convertSolution mirrors one core solution into the public shape.
func convertSolution(w workload.Workload, sol *core.Solution) *Solution {
	if sol == nil {
		return nil
	}
	out := &Solution{
		Episode:          sol.Episode,
		WeightedAccuracy: sol.Weighted,
		LatencyCycles:    sol.Latency,
		EnergyNJ:         sol.EnergyNJ,
		AreaUM2:          sol.AreaUM2,
		Feasible:         sol.Feasible,
	}
	for _, s := range sol.Design.Subs {
		out.Design.Subs = append(out.Design.Subs, SubAccel{
			Dataflow:     s.DF.String(),
			PEs:          s.PEs,
			BandwidthGBs: s.BW,
		})
	}
	for i, t := range w.Tasks {
		tr := TaskResult{
			Name:    t.Name,
			Dataset: t.Dataset.String(),
			Metric:  t.Dataset.Metric(),
		}
		if i < len(sol.Accuracies) {
			tr.Accuracy = sol.Accuracies[i]
		}
		if i < len(sol.ArchChoices) {
			tr.Choices = append([]int(nil), sol.ArchChoices[i]...)
			tr.Architecture = t.Space.ValuesString(sol.ArchChoices[i])
		}
		out.Tasks = append(out.Tasks, tr)
	}
	return out
}

// convertEvent mirrors one core episode event into the public shape.
func convertEvent(w workload.Workload, ev core.EpisodeEvent) Event {
	return Event{
		Episode:     ev.Stats.Episode,
		Reward:      ev.Stats.Reward,
		Feasible:    ev.Stats.Feasible,
		Pruned:      ev.Stats.Pruned,
		HWEvals:     ev.Stats.HWEvals,
		HWCacheHits: ev.Stats.HWCacheHits,
		HWDeduped:   ev.Stats.HWDeduped,
		Explored:    ev.Explored,
		Best:        convertSolution(w, ev.Best),
	}
}

// convertResult mirrors the core result into the public shape.
func convertResult(w workload.Workload, x *core.Explorer, res *core.Result) *Result {
	if res == nil {
		return nil
	}
	out := &Result{
		Workload: w.Name,
		Specs:    convertSpecs(w.Specs),
		Episodes: len(res.History),
		Best:     convertSolution(w, res.Best),
		Stats: Stats{
			Trainings:         res.Trainings,
			HWRequests:        res.HWRequests,
			HWEvals:           res.HWEvals,
			HWCacheHits:       res.HWCacheHits,
			HWDeduped:         res.HWDeduped,
			LayerCostRequests: res.LayerCostRequests,
			LayerCostHits:     res.LayerCostHits,
			PrunedEpisodes:    res.Pruned,
		},
		explorer: x,
		core:     res,
	}
	for _, s := range res.Explored {
		out.Explored = append(out.Explored, convertSolution(w, s))
	}
	return out
}
