package nasaic

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nasaic/internal/experiments"
	"nasaic/internal/export"
	"nasaic/internal/stats"
	"nasaic/internal/workload"
)

// Budget scales the search effort of the paper-evaluation wrappers (Table1,
// Table2, Fig1, Fig6). The zero value of the toggle fields keeps every
// acceleration on; all of them are bit-identical switches that only change
// wall clock and reported counters.
type Budget struct {
	// Episodes is NASAIC's β (paper: 500); MCRuns the Monte Carlo sample
	// count (paper: 10,000); NASSamples and HWSamples bound the baselines'
	// sampling.
	Episodes   int   `json:"episodes"`
	MCRuns     int   `json:"mc_runs"`
	NASSamples int   `json:"nas_samples"`
	HWSamples  int   `json:"hw_samples"`
	Seed       int64 `json:"seed"`
	// DisableHWCache turns off the hardware-evaluation cache.
	DisableHWCache bool `json:"disable_hw_cache,omitempty"`
	// DisableLayerMemo turns off the per-layer cost-model memo.
	DisableLayerMemo bool `json:"disable_layer_memo,omitempty"`
	// SharedMemo shares the layer-cost memo process-wide and one accuracy
	// memo across the experiment's searches (warm-start).
	SharedMemo bool `json:"shared_memo,omitempty"`
	// SequentialController disables the controller's batched fast path.
	SequentialController bool `json:"sequential_controller,omitempty"`
	// NoSolverCheckpoint disables the HAP heuristic's checkpointed
	// move-scan simulator.
	NoSolverCheckpoint bool `json:"no_solver_checkpoint,omitempty"`
	// CacheDir backs every search's memo tiers with the persistent on-disk
	// warm tier under this directory (see WithCacheDir); empty keeps the
	// warm tier off.
	CacheDir string `json:"cache_dir,omitempty"`
}

// QuickBudget is the reduced configuration used by tests and benchmarks;
// result shapes (who wins, what is feasible) are preserved.
func QuickBudget() Budget { return budgetFrom(experiments.QuickBudget()) }

// PaperBudget is the full-fidelity configuration of §V-A.
func PaperBudget() Budget { return budgetFrom(experiments.PaperBudget()) }

func budgetFrom(b experiments.Budget) Budget {
	return Budget{
		Episodes: b.Episodes, MCRuns: b.MCRuns,
		NASSamples: b.NASSamples, HWSamples: b.HWSamples, Seed: b.Seed,
	}
}

func (b Budget) internal() experiments.Budget {
	return experiments.Budget{
		Episodes:             b.Episodes,
		MCRuns:               b.MCRuns,
		NASSamples:           b.NASSamples,
		HWSamples:            b.HWSamples,
		Seed:                 b.Seed,
		DisableHWCache:       b.DisableHWCache,
		DisableLayerMemo:     b.DisableLayerMemo,
		SharedMemo:           b.SharedMemo,
		SequentialController: b.SequentialController,
		NoSolverCheckpoint:   b.NoSolverCheckpoint,
		CacheDir:             b.CacheDir,
	}
}

// ExperimentStats aggregates evaluator work across an experiment's NASAIC
// runs.
type ExperimentStats struct {
	Trainings         int `json:"trainings"`
	HWRequests        int `json:"hw_requests"`
	HWEvals           int `json:"hw_evals"`
	HWCacheHits       int `json:"hw_cache_hits"`
	HWDeduped         int `json:"hw_deduped"`
	LayerCostRequests int `json:"layer_cost_requests"`
	LayerCostHits     int `json:"layer_cost_hits"`
}

// HWCacheHitPct returns the percentage of hardware requests served from
// cache.
func (s ExperimentStats) HWCacheHitPct() float64 {
	return stats.Pct(int64(s.HWCacheHits), int64(s.HWRequests))
}

// LayerCostHitPct returns the percentage of cost-model queries served by the
// per-layer memo.
func (s ExperimentStats) LayerCostHitPct() float64 {
	return stats.Pct(int64(s.LayerCostHits), int64(s.LayerCostRequests))
}

func experimentStats(st experiments.SearchStats) ExperimentStats {
	return ExperimentStats{
		Trainings:         st.Trainings,
		HWRequests:        st.HWRequests,
		HWEvals:           st.HWEvals,
		HWCacheHits:       st.HWCacheHits,
		HWDeduped:         st.HWDeduped,
		LayerCostRequests: st.LayerCostRequests,
		LayerCostHits:     st.LayerCostHits,
	}
}

// Table1 regenerates Table I (NAS→ASIC vs ASIC→HW-NAS vs NASAIC on W1/W2),
// rendering it to out and, when csv is non-nil, writing the machine-readable
// rows there. The context aborts the underlying searches promptly.
func Table1(ctx context.Context, b Budget, out io.Writer, csv io.Writer) (ExperimentStats, error) {
	rows, st, err := experiments.Table1(ctx, b.internal())
	if err != nil {
		return ExperimentStats{}, err
	}
	experiments.RenderTable1(out, rows)
	if csv != nil {
		header, body := experiments.Table1CSV(rows)
		if err := export.CSV(csv, header, body); err != nil {
			return ExperimentStats{}, err
		}
	}
	return experimentStats(st), nil
}

// Table2 regenerates Table II (single vs homogeneous vs heterogeneous
// accelerators on W3), rendering it to out.
func Table2(ctx context.Context, b Budget, out io.Writer) (ExperimentStats, error) {
	rows, st, err := experiments.Table2(ctx, b.internal())
	if err != nil {
		return ExperimentStats{}, err
	}
	experiments.RenderTable2(out, rows)
	return experimentStats(st), nil
}

// Fig1 regenerates the motivating design-space exploration, rendering the
// ASCII projection to out and, when csvDir is non-empty, writing fig1.csv
// there.
func Fig1(ctx context.Context, b Budget, out io.Writer, csvDir string) error {
	d, err := experiments.Fig1(ctx, b.internal())
	if err != nil {
		return err
	}
	experiments.RenderFig1(out, d)
	if csvDir == "" {
		return nil
	}
	h, rows := experiments.PointsCSV(d.NASASIC, "nas_asic")
	extra := []experiments.MetricPoint{d.HWNAS}
	if d.Heuristic != nil {
		extra = append(extra, *d.Heuristic)
	}
	if d.Optimal != nil {
		extra = append(extra, *d.Optimal)
	}
	_, extraRows := experiments.PointsCSV(extra, "highlight")
	return writeCSV(out, csvDir, "fig1.csv", h, append(rows, extraRows...))
}

// Fig6 regenerates one workload panel of Fig. 6, rendering it to out and,
// when csvDir is non-empty, writing fig6_<workload>.csv there.
func Fig6(ctx context.Context, workloadName string, b Budget, out io.Writer, csvDir string) (ExperimentStats, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return ExperimentStats{}, err
	}
	d, err := experiments.Fig6(ctx, w, b.internal())
	if err != nil {
		return ExperimentStats{}, err
	}
	experiments.RenderFig6(out, d)
	st := experimentStats(d.Stats)
	if csvDir == "" {
		return st, nil
	}
	h, rows := experiments.PointsCSV(d.Explored, "explored")
	_, lbRows := experiments.PointsCSV(d.LowerBounds, "lower_bound")
	_, bestRows := experiments.PointsCSV([]experiments.MetricPoint{d.Best}, "best")
	rows = append(rows, lbRows...)
	rows = append(rows, bestRows...)
	return st, writeCSV(out, csvDir, fmt.Sprintf("fig6_%s.csv", w.Name), h, rows)
}

// writeCSV writes one CSV export under dir, reporting the path to out.
func writeCSV(out io.Writer, dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.CSV(f, header, rows); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
