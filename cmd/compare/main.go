// Command compare regenerates the paper's comparison tables through the
// public pkg/nasaic API:
//
//	compare -table 1    # Table I: NAS→ASIC vs ASIC→HW-NAS vs NASAIC (W1, W2)
//	compare -table 2    # Table II: single vs homogeneous vs heterogeneous (W3)
//
// Pass -paper for the full §V-A search budget (β=500, 10,000 Monte Carlo
// runs) or use the default quick budget that preserves the result shapes.
// -csv writes a machine-readable copy next to the printed table.
//
// Tables are bit-identical across runs, hosts and cache temperatures (CI
// diffs warm vs cold regenerations); the determinism rules behind that are
// machine-checked by the cmd/nasaiclint analyzers via `go vet -vettool`.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"nasaic/pkg/nasaic"
)

func main() {
	var (
		table      = flag.Int("table", 1, "table to regenerate: 1 or 2")
		paper      = flag.Bool("paper", false, "use the paper's full search budget")
		seed       = flag.Int64("seed", 1, "random seed")
		csv        = flag.String("csv", "", "optional path for CSV export (table 1 only)")
		hwcache    = flag.Bool("hwcache", true, "memoize hardware evaluations (results are identical either way)")
		sharedmemo = flag.Bool("sharedmemo", false, "share the layer-cost memo process-wide and the accuracy memo across the table's searches (warm-start; results are identical)")
		batchrl    = flag.Bool("batchrl", true, "use the controller's batched policy-gradient fast path (results are identical either way)")
		solverckpt = flag.Bool("solverckpt", true, "use the HAP heuristic's checkpointed move-scan simulator (results are identical either way)")
		cachedir   = flag.String("cachedir", "", "directory for the persistent cache warm tier; a second run pointed here starts with warm memos (results are identical either way)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	b := nasaic.QuickBudget()
	if *paper {
		b = nasaic.PaperBudget()
	}
	b.Seed = *seed
	b.DisableHWCache = !*hwcache
	b.SharedMemo = *sharedmemo
	b.SequentialController = !*batchrl
	b.NoSolverCheckpoint = !*solverckpt
	b.CacheDir = *cachedir

	printStats := func(stats nasaic.ExperimentStats) {
		fmt.Printf("\nNASAIC evaluator work: %d hardware evaluations for %d requests (%.1f%% cache hits, %d in-batch dedups), %d trainings\n",
			stats.HWEvals, stats.HWRequests, stats.HWCacheHitPct(), stats.HWDeduped, stats.Trainings)
		scope := "per-run"
		if *sharedmemo {
			scope = "shared process-wide, warm-start"
		}
		fmt.Printf("layer-cost memo (%s): %d of %d cost-model queries served (%.1f%%)\n",
			scope, stats.LayerCostHits, stats.LayerCostRequests, stats.LayerCostHitPct())
		mode := "batched (lockstep matrix-matrix)"
		if !*batchrl {
			mode = "sequential (matrix-vector)"
		}
		fmt.Printf("controller: %s policy-gradient path\n", mode)
	}

	switch *table {
	case 1:
		// Buffer the CSV and only touch the target file after the searches
		// succeed, so a failed or interrupted run cannot truncate a
		// previously exported copy.
		var csvBuf bytes.Buffer
		var csvW io.Writer
		if *csv != "" {
			csvW = &csvBuf
		}
		stats, err := nasaic.Table1(ctx, b, os.Stdout, csvW)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv != "" {
			if err := os.WriteFile(*csv, csvBuf.Bytes(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		printStats(stats)
	case 2:
		stats, err := nasaic.Table2(ctx, b, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printStats(stats)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (want 1 or 2)\n", *table)
		os.Exit(2)
	}
}
