package main

import (
	"errors"
	"testing"
	"time"
)

// settle waits for an in-flight flush to finish (backoff state is final
// before inFlight clears).
func settle(t *testing.T, f *cacheFlusher) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !f.inFlight.Load() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("flush never finished")
}

func TestFlusherSkipsWhileInFlight(t *testing.T) {
	release := make(chan error)
	f := newCacheFlusher(func() error { return <-release }, t.Logf, time.Minute)
	t0 := time.Unix(1000, 0)

	if !f.tick(t0) {
		t.Fatal("first tick did not start a flush")
	}
	// The flush is blocked mid-write; further ticks must skip, not stack.
	for i := 1; i <= 3; i++ {
		if f.tick(t0.Add(time.Duration(i) * time.Minute)) {
			t.Fatalf("tick %d started a second flush while one was in flight", i)
		}
	}
	release <- nil
	settle(t, f)
	if !f.tick(t0.Add(5 * time.Minute)) {
		t.Fatal("tick after a successful flush did not start one")
	}
	release <- nil
	settle(t, f)
}

func TestFlusherBacksOffAfterFailures(t *testing.T) {
	var calls int
	fail := errors.New("disk full")
	var result error
	f := newCacheFlusher(func() error { calls++; return result }, t.Logf, time.Minute)

	now := time.Unix(2000, 0)
	mustTick := func(want bool, what string) {
		t.Helper()
		if got := f.tick(now); got != want {
			t.Fatalf("%s: tick = %v, want %v (backoff %s)", what, got, want, f.backoff)
		}
		settle(t, f)
	}

	// First failure: suppressed for one interval, then doubling.
	result = fail
	mustTick(true, "first attempt")
	wantBackoff := time.Minute
	for i := 0; i < 6; i++ {
		mustTick(false, "during backoff")
		now = now.Add(f.backoff) // advance exactly to the retry point
		mustTick(true, "retry after backoff")
		if wantBackoff < f.maxBackoff {
			wantBackoff *= 2
			if wantBackoff > f.maxBackoff {
				wantBackoff = f.maxBackoff
			}
		}
		if f.backoff != wantBackoff {
			t.Fatalf("failure %d: backoff %s, want %s", i+2, f.backoff, wantBackoff)
		}
	}
	if f.backoff != f.maxBackoff {
		t.Fatalf("backoff %s never reached the %s cap", f.backoff, f.maxBackoff)
	}

	// One success resets everything.
	result = nil
	now = now.Add(f.backoff)
	mustTick(true, "retry that succeeds")
	if f.backoff != 0 || !f.notBefore.IsZero() {
		t.Fatalf("success did not reset backoff: %s until %v", f.backoff, f.notBefore)
	}
	mustTick(true, "tick after reset")
	if calls < 8 {
		t.Fatalf("flush ran %d times, expected at least 8", calls)
	}
}
