package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nasaic/pkg/nasaic"
)

// daemon is one nasaicd process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nasaicd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startDaemon(t *testing.T, bin, addr, datadir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-datadir", datadir, "-max-jobs", "1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", addr)
	return nil
}

func (d *daemon) getJob(t *testing.T, id string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestKillRestartRecovery is the crash-safety acceptance smoke at process
// level: SIGKILL the daemon mid-run, restart it over the same -datadir, and
// require the re-executed job to finish bit-identical to a direct in-process
// run of the same spec — with SSE Last-Event-ID replay working against the
// recovered job.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level kill/restart smoke skipped in -short mode")
	}
	const episodes = 600
	bin := buildDaemon(t)
	datadir := t.TempDir()
	addr := freeAddr(t)

	d1 := startDaemon(t, bin, addr, datadir)
	spec := fmt.Sprintf(`{"workload":"W3","episodes":%d,"seed":1,"workers":2}`, episodes)
	resp, err := http.Post(d1.base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	// Wait until the job is demonstrably mid-run (events journaled), then
	// pull the plug with no warning whatsoever.
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never produced events before the kill")
		}
		snap := d1.getJob(t, submitted.ID)
		var n int
		_ = json.Unmarshal(snap["episodes"], &n)
		if n >= 20 && n < episodes {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()

	// Restart over the same datadir: the job must reappear immediately and
	// re-execute to completion.
	d2 := startDaemon(t, bin, addr, datadir)
	var status string
	deadline = time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %q", status)
		}
		snap := d2.getJob(t, submitted.ID)
		_ = json.Unmarshal(snap["status"], &status)
		if status == "succeeded" || status == "failed" || status == "cancelled" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if status != "succeeded" {
		t.Fatalf("recovered job finished %q, want succeeded", status)
	}

	// Bit-identical to the exact same exploration run in-process.
	want, err := nasaic.Run(context.Background(),
		nasaic.WithWorkload("W3"),
		nasaic.WithEpisodes(episodes),
		nasaic.WithSeed(1),
		nasaic.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := d2.getJob(t, submitted.ID)
	var result nasaic.Result
	if err := json.Unmarshal(snap["result"], &result); err != nil {
		t.Fatalf("recovered job has no result: %v", err)
	}
	if result.Best == nil || want.Best == nil {
		t.Fatalf("missing best solution: got %v, want %v", result.Best, want.Best)
	}
	if result.Best.Design.String() != want.Best.Design.String() ||
		result.Best.WeightedAccuracy != want.Best.WeightedAccuracy ||
		result.Best.LatencyCycles != want.Best.LatencyCycles ||
		result.Best.EnergyNJ != want.Best.EnergyNJ ||
		result.Best.AreaUM2 != want.Best.AreaUM2 {
		t.Fatalf("re-executed result diverged from direct run:\n%+v\nvs\n%+v", result.Best, want.Best)
	}
	if len(result.Explored) != len(want.Explored) {
		t.Fatalf("explored %d solutions, want %d", len(result.Explored), len(want.Explored))
	}

	// SSE replay against the recovered (terminal) job: resume near the tail
	// and require the remaining episodes plus the done frame.
	from := episodes - 5
	req, _ := http.NewRequest(http.MethodGet, d2.base+"/v1/jobs/"+submitted.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(from-1))
	sse, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	r := bufio.NewReader(sse.Body)
	var ids []string
	var events []string
	cur := ""
	for len(events) < 7 {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ids = append(ids, line[len("id: "):])
		case line == "" && cur != "":
			events = append(events, cur)
			cur = ""
		}
	}
	if len(events) != 6 {
		t.Fatalf("SSE replay: %d frames (%v), want 5 episodes + done", len(events), events)
	}
	for i := 0; i < 5; i++ {
		if events[i] != "episode" || ids[i] != fmt.Sprint(from+i) {
			t.Fatalf("replay frame %d: %s id %s, want episode %d", i, events[i], ids[i], from+i)
		}
	}
	if events[5] != "done" || ids[5] != fmt.Sprint(episodes) {
		t.Fatalf("terminal frame %s id %s, want done %d", events[5], ids[5], episodes)
	}
}
