package main

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// cacheFlusher serializes the periodic warm-tier flushes. Two defenses over
// a bare ticker loop:
//
//   - Ticks that arrive while a flush is still writing are skipped, never
//     stacked: a slow disk cannot accumulate concurrent (or back-to-back)
//     snapshot writes.
//   - A failed flush backs off exponentially — the next attempts are
//     suppressed for interval, 2×interval, ... up to maxBackoff — instead of
//     hammering a full or read-only disk at the tick rate. A success resets
//     the backoff.
type cacheFlusher struct {
	flush      func() error
	logf       func(format string, args ...any)
	interval   time.Duration
	maxBackoff time.Duration

	inFlight  atomic.Bool
	mu        sync.Mutex
	notBefore time.Time // suppress attempts until then (failure backoff)
	backoff   time.Duration
}

func newCacheFlusher(flush func() error, logf func(format string, args ...any), interval time.Duration) *cacheFlusher {
	return &cacheFlusher{
		flush:      flush,
		logf:       logf,
		interval:   interval,
		maxBackoff: 16 * interval,
	}
}

// run drives the flusher off a wall-clock ticker until ctx is done.
func (f *cacheFlusher) run(ctx context.Context) {
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			f.tick(now)
		case <-ctx.Done():
			return
		}
	}
}

// tick starts one flush unless one is already in flight or a failure
// backoff is active; it reports whether a flush was started. The flush runs
// on its own goroutine so the ticker keeps observing time (and keeps
// skipping) while a slow flush is still writing.
func (f *cacheFlusher) tick(now time.Time) bool {
	f.mu.Lock()
	suppressed := now.Before(f.notBefore)
	f.mu.Unlock()
	if suppressed {
		return false
	}
	if !f.inFlight.CompareAndSwap(false, true) {
		return false // previous flush still writing; skip, don't stack
	}
	go func() {
		defer f.inFlight.Store(false)
		err := f.flush()
		f.mu.Lock()
		defer f.mu.Unlock()
		if err == nil {
			f.backoff = 0
			f.notBefore = time.Time{}
			return
		}
		switch {
		case f.backoff == 0:
			f.backoff = f.interval
		case f.backoff < f.maxBackoff:
			f.backoff *= 2
			if f.backoff > f.maxBackoff {
				f.backoff = f.maxBackoff
			}
		}
		f.notBefore = now.Add(f.backoff)
		f.logf("warm-tier flush failed (backing off %s): %v", f.backoff, err)
	}()
	return true
}
