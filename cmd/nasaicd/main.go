// Command nasaicd serves NASAIC co-explorations over HTTP: clients submit
// jobs, stream per-episode progress as Server-Sent Events, and cancel
// mid-run. All jobs share one process, and with -sharedmemo one evaluation
// cache, so repeat explorations warm-start each other.
//
// Usage:
//
//	nasaicd [-addr :8080] [-max-jobs 2] [-max-pending 0] [-history 64]
//	        [-sharedmemo] [-cachedir DIR] [-cacheflush 5m] [-datadir DIR]
//	        [-tenants FILE]
//
// With -cachedir the shared evaluation cache and memos persist across
// restarts: the warm tier is loaded at startup, flushed every -cacheflush
// interval, and flushed once more at shutdown. -max-pending bounds the jobs
// queued for a concurrency slot; excess submissions get HTTP 429.
//
// With -tenants the daemon is multi-tenant: FILE is a JSON API-key registry
// ({"tenants":[{"name":"acme","key":"...","max_pending":16,
// "max_concurrent":2,"max_event_ring":1024,"admin":false}, ...]}) and every
// /v1 request must carry `Authorization: Bearer <key>` (missing or malformed
// credentials get 401, unknown keys 403; /healthz stays open). Each tenant
// sees and cancels only its own jobs (admin tenants see all), its
// submissions count against its own max_pending/max_concurrent quotas (429
// with a Retry-After hint when exhausted), and the scheduler round-robins
// slots across tenants so one tenant's burst cannot starve another. Job
// ownership is journaled, so with -datadir it survives restarts. Without
// -tenants every client is the single anonymous tenant (the pre-tenancy
// behavior).
//
// With -datadir the daemon is crash-safe: every submission, state
// transition and episode event is fsynced to an append-only journal under
// DIR/journal before it becomes observable over HTTP. A restarted daemon
// pointed at the same -datadir restores finished jobs — results and full
// event rings, so SSE Last-Event-ID replay works across the restart — and
// re-executes the jobs that were pending or running when the process died;
// seeded determinism makes the re-run bit-identical, re-emitting events
// under their journaled sequence numbers. A job cancelled before the crash
// settles as cancelled rather than re-running. Journal damage (torn tails
// from the crash itself, bit flips, version skew) is truncated away at
// startup; it degrades durability, never prevents the daemon from starting.
//
// API:
//
//	POST   /v1/jobs             {"workload":"W3","episodes":150,"seed":1}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status + result once finished
//	GET    /v1/jobs/{id}/events SSE stream of episode events
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nasaic/internal/jobs"
	"nasaic/internal/tenant"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxJobs    = flag.Int("max-jobs", 2, "jobs exploring concurrently; further submissions queue")
		maxPending = flag.Int("max-pending", 0, "jobs queued for a slot before submissions are rejected with 429; 0 = unbounded")
		history    = flag.Int("history", 64, "finished jobs retained for inspection")
		sharedmemo = flag.Bool("sharedmemo", true, "share the evaluation cache and memos across jobs (results are identical either way)")
		cachedir   = flag.String("cachedir", "", "directory for the persistent cache warm tier, loaded at startup and flushed periodically and at shutdown (results are identical either way)")
		cacheflush = flag.Duration("cacheflush", 5*time.Minute, "interval between periodic warm-tier flushes (with -cachedir)")
		datadir    = flag.String("datadir", "", "directory for the durable job journal; jobs survive restarts (finished ones are restored, interrupted ones re-executed)")
		tenantsCfg = flag.String("tenants", "", "JSON API-key registry; turns on Bearer auth, per-tenant quotas and fair scheduling across tenants")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "nasaicd: "+format+"\n", args...)
	}
	var reg *tenant.Registry
	if *tenantsCfg != "" {
		var err error
		if reg, err = tenant.Load(*tenantsCfg); err != nil {
			// A bad key file must not silently open the daemon to everyone.
			fmt.Fprintf(os.Stderr, "nasaicd: -tenants: %v\n", err)
			os.Exit(1)
		}
	}
	m := jobs.NewManager(jobs.Options{
		MaxConcurrent: *maxJobs,
		MaxPending:    *maxPending,
		MaxHistory:    *history,
		ShareMemos:    *sharedmemo,
		CacheDir:      *cachedir,
		DataDir:       *datadir,
		Logf:          logf,
		Tenants:       reg,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: jobs.NewAuthHandler(m, reg),
		// Submissions and polls are quick; the SSE stream manages its own
		// lifetime, so no global write timeout.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodically snapshot the warm tier so a crash loses at most one flush
	// interval of memoized work; Close flushes once more at shutdown. The
	// flusher skips ticks while a flush is still writing and backs off after
	// failures instead of hammering a bad disk.
	if *cachedir != "" && *cacheflush > 0 {
		go newCacheFlusher(m.FlushCaches, logf, *cacheflush).run(ctx)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("nasaicd listening on %s (max-jobs=%d, sharedmemo=%v)\n", *addr, *maxJobs, *sharedmemo)
	if *cachedir != "" {
		fmt.Printf("nasaicd: persistent warm tier at %s (flush every %s)\n", *cachedir, *cacheflush)
	}
	if *datadir != "" {
		fmt.Printf("nasaicd: durable job journal at %s (jobs survive restarts)\n", *datadir)
	}
	if reg != nil {
		fmt.Printf("nasaicd: multi-tenant auth on (%d tenants: %v)\n", len(reg.Names()), reg.Names())
	}

	select {
	case <-ctx.Done():
		fmt.Println("nasaicd: shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		m.Close()
		os.Exit(1)
	}

	// Stop accepting connections, then cancel the running jobs; SSE streams
	// end with their jobs' terminal events.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Close()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
