// Command nasaicd serves NASAIC co-explorations over HTTP: clients submit
// jobs, stream per-episode progress as Server-Sent Events, and cancel
// mid-run. All jobs share one process, and with -sharedmemo one evaluation
// cache, so repeat explorations warm-start each other.
//
// Usage:
//
//	nasaicd [-addr :8080] [-max-jobs 2] [-max-pending 0] [-history 64]
//	        [-sharedmemo] [-cachedir DIR] [-cacheflush 5m] [-datadir DIR]
//	        [-tenants FILE] [-role standalone|coordinator|worker]
//	        [-workers URL,URL,...] [-cluster-key KEY]
//
// With -cachedir the shared evaluation cache and memos persist across
// restarts: the warm tier is loaded at startup, flushed every -cacheflush
// interval, and flushed once more at shutdown. -max-pending bounds the jobs
// queued for a concurrency slot; excess submissions get HTTP 429.
//
// With -tenants the daemon is multi-tenant: FILE is a JSON API-key registry
// ({"tenants":[{"name":"acme","key":"...","max_pending":16,
// "max_concurrent":2,"max_event_ring":1024,"admin":false}, ...]}) and every
// /v1 request must carry `Authorization: Bearer <key>` (missing or malformed
// credentials get 401, unknown keys 403; /healthz stays open). Each tenant
// sees and cancels only its own jobs (admin tenants see all), its
// submissions count against its own max_pending/max_concurrent quotas (429
// with a Retry-After hint when exhausted), and the scheduler round-robins
// slots across tenants so one tenant's burst cannot starve another. Job
// ownership is journaled, so with -datadir it survives restarts. Without
// -tenants every client is the single anonymous tenant (the pre-tenancy
// behavior).
//
// With -datadir the daemon is crash-safe: every submission, state
// transition and episode event is fsynced to an append-only journal under
// DIR/journal before it becomes observable over HTTP. A restarted daemon
// pointed at the same -datadir restores finished jobs — results and full
// event rings, so SSE Last-Event-ID replay works across the restart — and
// re-executes the jobs that were pending or running when the process died;
// seeded determinism makes the re-run bit-identical, re-emitting events
// under their journaled sequence numbers. A job cancelled before the crash
// settles as cancelled rather than re-running. Journal damage (torn tails
// from the crash itself, bit flips, version skew) is truncated away at
// startup; it degrades durability, never prevents the daemon from starting.
//
// With -role the daemon joins a cluster (default standalone keeps every
// behavior above, bit-identical results everywhere):
//
//   - `-role coordinator -workers http://w1:8080,http://w2:8080` serves the
//     public API unchanged but executes nothing locally: granted jobs are
//     dispatched to the least-loaded healthy worker and their SSE streams
//     proxied back, sequence numbers and all. Tenant auth, quotas and fair
//     scheduling stay at the coordinator; with -datadir every job→worker
//     binding is journaled, so a restarted coordinator re-attaches to
//     in-flight remote runs. When a worker dies mid-job, the coordinator
//     re-dispatches the job to another replica — deterministic re-execution
//     converges to the identical result, and clients just see their SSE
//     stream resume. GET /healthz reports per-worker status as JSON.
//   - `-role worker` is a standalone daemon whose /v1 surface is gated by
//     the -cluster-key shared key (distinct from tenant keys, which never
//     reach workers) and which additionally serves /v1/cluster/health load
//     probes. /healthz stays open and bare.
//
// -cluster-key sets the shared key on both sides; empty disables the gate
// (trusted networks only). In coordinator mode an unset -max-jobs defaults
// to 4× the worker count instead of 2, since slots only bound dispatch
// fan-out, not local CPU.
//
// The daemon's core invariants — deterministic results, journal-before-
// publish without fsyncing under Manager.mu, end-to-end context plumbing,
// no IO under hot locks — are machine-checked by the cmd/nasaiclint
// analyzers, which CI runs via `go vet -vettool` before any test.
//
// API:
//
//	POST   /v1/jobs             {"workload":"W3","episodes":150,"seed":1}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status + result once finished
//	GET    /v1/jobs/{id}/events SSE stream of episode events
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nasaic/internal/cluster"
	"nasaic/internal/jobs"
	"nasaic/internal/tenant"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxJobs    = flag.Int("max-jobs", 2, "jobs exploring concurrently; further submissions queue (coordinator default: 4x worker count)")
		maxPending = flag.Int("max-pending", 0, "jobs queued for a slot before submissions are rejected with 429; 0 = unbounded")
		history    = flag.Int("history", 64, "finished jobs retained for inspection")
		sharedmemo = flag.Bool("sharedmemo", true, "share the evaluation cache and memos across jobs (results are identical either way)")
		cachedir   = flag.String("cachedir", "", "directory for the persistent cache warm tier, loaded at startup and flushed periodically and at shutdown (results are identical either way)")
		cacheflush = flag.Duration("cacheflush", 5*time.Minute, "interval between periodic warm-tier flushes (with -cachedir)")
		datadir    = flag.String("datadir", "", "directory for the durable job journal; jobs survive restarts (finished ones are restored, interrupted ones re-executed)")
		tenantsCfg = flag.String("tenants", "", "JSON API-key registry; turns on Bearer auth, per-tenant quotas and fair scheduling across tenants")
		role       = flag.String("role", "standalone", "cluster role: standalone, coordinator (dispatches jobs to -workers) or worker (serves a coordinator)")
		workersCSV = flag.String("workers", "", "comma-separated worker base URLs (coordinator role)")
		clusterKey = flag.String("cluster-key", "", "shared key authenticating coordinator→worker traffic; empty disables the gate")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "nasaicd: "+format+"\n", args...)
	}
	var reg *tenant.Registry
	if *tenantsCfg != "" {
		var err error
		if reg, err = tenant.Load(*tenantsCfg); err != nil {
			// A bad key file must not silently open the daemon to everyone.
			fmt.Fprintf(os.Stderr, "nasaicd: -tenants: %v\n", err)
			os.Exit(1)
		}
	}

	// Cluster wiring happens before the manager exists: the coordinator is
	// the manager's Executor, so recovery's re-dispatch of journaled jobs
	// already goes through it.
	var coord *cluster.Coordinator
	switch *role {
	case "standalone", "worker":
		if *workersCSV != "" {
			fmt.Fprintf(os.Stderr, "nasaicd: -workers only applies to -role coordinator\n")
			os.Exit(2)
		}
	case "coordinator":
		var urls []string
		for _, u := range strings.Split(*workersCSV, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		var err error
		if coord, err = cluster.New(cluster.Config{
			Workers: urls,
			Key:     *clusterKey,
			Logf:    logf,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "nasaicd: %v\n", err)
			os.Exit(2)
		}
		// The coordinator's concurrency limit only bounds dispatch fan-out
		// (no local CPU burned per slot), so an unset -max-jobs scales with
		// the cluster rather than staying at the single-node default.
		set := false
		flag.Visit(func(f *flag.Flag) { set = set || f.Name == "max-jobs" })
		if !set {
			*maxJobs = 4 * len(urls)
		}
	default:
		fmt.Fprintf(os.Stderr, "nasaicd: unknown -role %q (want standalone, coordinator or worker)\n", *role)
		os.Exit(2)
	}

	opts := jobs.Options{
		MaxConcurrent: *maxJobs,
		MaxPending:    *maxPending,
		MaxHistory:    *history,
		ShareMemos:    *sharedmemo,
		CacheDir:      *cachedir,
		DataDir:       *datadir,
		Logf:          logf,
		Tenants:       reg,
	}
	if coord != nil {
		opts.Executor = coord
	}
	m := jobs.NewManager(opts)

	var handler http.Handler
	switch {
	case coord != nil:
		handler = cluster.NewCoordinatorHandler(m, reg, coord)
	case *role == "worker":
		handler = cluster.NewWorkerHandler(m, *clusterKey)
	default:
		handler = jobs.NewAuthHandler(m, reg)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Submissions and polls are quick; the SSE stream manages its own
		// lifetime, so no global write timeout.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodically snapshot the warm tier so a crash loses at most one flush
	// interval of memoized work; Close flushes once more at shutdown. The
	// flusher skips ticks while a flush is still writing and backs off after
	// failures instead of hammering a bad disk.
	if *cachedir != "" && *cacheflush > 0 {
		go newCacheFlusher(m.FlushCaches, logf, *cacheflush).run(ctx)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("nasaicd listening on %s (role=%s, max-jobs=%d, sharedmemo=%v)\n", *addr, *role, *maxJobs, *sharedmemo)
	if coord != nil {
		fmt.Printf("nasaicd: coordinating %d workers: %s\n", len(coord.Status()), *workersCSV)
	}
	if *role == "worker" {
		gate := "open (no -cluster-key)"
		if *clusterKey != "" {
			gate = "shared-key gated"
		}
		fmt.Printf("nasaicd: worker mode, /v1 %s\n", gate)
	}
	if *cachedir != "" {
		fmt.Printf("nasaicd: persistent warm tier at %s (flush every %s)\n", *cachedir, *cacheflush)
	}
	if *datadir != "" {
		fmt.Printf("nasaicd: durable job journal at %s (jobs survive restarts)\n", *datadir)
	}
	if reg != nil {
		fmt.Printf("nasaicd: multi-tenant auth on (%d tenants: %v)\n", len(reg.Names()), reg.Names())
	}

	select {
	case <-ctx.Done():
		fmt.Println("nasaicd: shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		m.Close()
		if coord != nil {
			coord.Close()
		}
		os.Exit(1)
	}

	// Stop accepting connections, then cancel the running jobs; SSE streams
	// end with their jobs' terminal events. The coordinator closes after the
	// manager: draining jobs still need the worker pool to cancel their
	// remote halves.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Close()
	if coord != nil {
		coord.Close()
	}
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
