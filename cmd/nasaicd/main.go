// Command nasaicd serves NASAIC co-explorations over HTTP: clients submit
// jobs, stream per-episode progress as Server-Sent Events, and cancel
// mid-run. All jobs share one process, and with -sharedmemo one evaluation
// cache, so repeat explorations warm-start each other.
//
// Usage:
//
//	nasaicd [-addr :8080] [-max-jobs 2] [-history 64] [-sharedmemo]
//
// API:
//
//	POST   /v1/jobs             {"workload":"W3","episodes":150,"seed":1}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status + result once finished
//	GET    /v1/jobs/{id}/events SSE stream of episode events
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nasaic/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxJobs    = flag.Int("max-jobs", 2, "jobs exploring concurrently; further submissions queue")
		history    = flag.Int("history", 64, "finished jobs retained for inspection")
		sharedmemo = flag.Bool("sharedmemo", true, "share the evaluation cache and memos across jobs (results are identical either way)")
	)
	flag.Parse()

	m := jobs.NewManager(jobs.Options{
		MaxConcurrent: *maxJobs,
		MaxHistory:    *history,
		ShareMemos:    *sharedmemo,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: jobs.NewHandler(m),
		// Submissions and polls are quick; the SSE stream manages its own
		// lifetime, so no global write timeout.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("nasaicd listening on %s (max-jobs=%d, sharedmemo=%v)\n", *addr, *maxJobs, *sharedmemo)

	select {
	case <-ctx.Done():
		fmt.Println("nasaicd: shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		m.Close()
		os.Exit(1)
	}

	// Stop accepting connections, then cancel the running jobs; SSE streams
	// end with their jobs' terminal events.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Close()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
