package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"nasaic/pkg/nasaic"
)

const smokeClusterKey = "smoke-cluster-key"

// startDaemonArgs is startDaemon with explicit flags (cluster roles).
func startDaemonArgs(t *testing.T, bin, addr string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", addr)
	return nil
}

// clusterGet issues a GET with the cluster shared key (worker /v1 surface).
func clusterGet(t *testing.T, url string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Authorization", "Bearer "+smokeClusterKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitCoordinatorWorkers polls the coordinator's JSON /healthz until n
// workers report healthy.
func waitCoordinatorWorkers(t *testing.T, d *daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			var h struct {
				Role    string `json:"role"`
				Workers []struct {
					Healthy bool `json:"healthy"`
				} `json:"workers"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if decErr == nil && h.Role == "coordinator" {
				healthy := 0
				for _, w := range h.Workers {
					if w.Healthy {
						healthy++
					}
				}
				if healthy >= n {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d healthy workers", n)
}

// pollEpisodes waits until the job has produced at least min episodes (and
// is not yet terminal) at the given daemon.
func pollEpisodes(t *testing.T, d *daemon, id string, min int) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %d episodes", id, min)
		}
		snap := d.getJob(t, id)
		var n int
		_ = json.Unmarshal(snap["episodes"], &n)
		var status string
		_ = json.Unmarshal(snap["status"], &status)
		if status == "succeeded" || status == "failed" || status == "cancelled" {
			t.Fatalf("job %s already terminal (%s) at %d episodes", id, status, n)
		}
		if n >= min {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitTerminal polls until the job settles, returning its final status.
func waitTerminal(t *testing.T, d *daemon, id string, timeout time.Duration) (string, map[string]json.RawMessage) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var status string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, status)
		}
		snap := d.getJob(t, id)
		_ = json.Unmarshal(snap["status"], &status)
		if status == "succeeded" || status == "failed" || status == "cancelled" {
			return status, snap
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func submitJob(t *testing.T, d *daemon, spec string) string {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || decErr != nil || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q (%v)", resp.StatusCode, submitted.ID, decErr)
	}
	return submitted.ID
}

func requireIdentical(t *testing.T, snap map[string]json.RawMessage, want *nasaic.Result, label string) {
	t.Helper()
	var result nasaic.Result
	if err := json.Unmarshal(snap["result"], &result); err != nil {
		t.Fatalf("%s: job has no result: %v", label, err)
	}
	if result.Best == nil || want.Best == nil {
		t.Fatalf("%s: missing best solution: got %v, want %v", label, result.Best, want.Best)
	}
	if result.Best.Design.String() != want.Best.Design.String() ||
		result.Best.WeightedAccuracy != want.Best.WeightedAccuracy ||
		result.Best.LatencyCycles != want.Best.LatencyCycles ||
		result.Best.EnergyNJ != want.Best.EnergyNJ ||
		result.Best.AreaUM2 != want.Best.AreaUM2 {
		t.Fatalf("%s: result diverged from the standalone run:\n%+v\nvs\n%+v", label, result.Best, want.Best)
	}
	if len(result.Explored) != len(want.Explored) {
		t.Fatalf("%s: explored %d solutions, want %d", label, len(result.Explored), len(want.Explored))
	}
}

// TestClusterFailoverSmoke is the cluster acceptance smoke at process
// level: 1 coordinator + 2 workers as real nasaicd processes.
//
// Phase 1 (worker death): a job runs through the coordinator, the worker
// executing it is SIGKILLed mid-run, and the coordinator must re-dispatch to
// the survivor and finish bit-identical to a direct in-process run of the
// same spec — the client polling the coordinator never sees an error.
//
// Phase 2 (coordinator death): the same spec is submitted again (the
// warm-vs-cold pass: the survivor's shared memos are hot now, and the result
// must still be byte-equal), the coordinator is SIGKILLed mid-run and
// restarted over the same -datadir, and the journaled job→worker binding
// must let it re-attach to the still-running remote job: the worker only
// ever sees the one submission, the job settles identically, and SSE
// Last-Event-ID replay works against the recovered stream.
func TestClusterFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level cluster smoke skipped in -short mode")
	}
	const episodes = 600
	bin := buildDaemon(t)
	datadir := t.TempDir()

	w1Addr, w2Addr, coordAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	w1 := startDaemonArgs(t, bin, w1Addr, "-role", "worker", "-cluster-key", smokeClusterKey, "-max-jobs", "1")
	w2 := startDaemonArgs(t, bin, w2Addr, "-role", "worker", "-cluster-key", smokeClusterKey, "-max-jobs", "1")
	workerList := "http://" + w1Addr + ",http://" + w2Addr
	coordArgs := []string{
		"-role", "coordinator",
		"-workers", workerList,
		"-cluster-key", smokeClusterKey,
		"-datadir", datadir,
	}
	coord := startDaemonArgs(t, bin, coordAddr, coordArgs...)
	waitCoordinatorWorkers(t, coord, 2)

	// The standalone reference for both phases.
	want, err := nasaic.Run(context.Background(),
		nasaic.WithWorkload("W3"),
		nasaic.WithEpisodes(episodes),
		nasaic.WithSeed(1),
		nasaic.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := fmt.Sprintf(`{"workload":"W3","episodes":%d,"seed":1,"workers":2}`, episodes)

	// ---- Phase 1: kill the worker executing the job. ----
	job1 := submitJob(t, coord, spec)
	pollEpisodes(t, coord, job1, 20)

	victim, survivor := (*daemon)(nil), (*daemon)(nil)
	for _, pair := range [][2]*daemon{{w1, w2}, {w2, w1}} {
		resp := clusterGet(t, pair[0].base+"/v1/jobs")
		var listed []struct {
			Status string `json:"status"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&listed)
		resp.Body.Close()
		if decErr != nil {
			t.Fatal(decErr)
		}
		for _, j := range listed {
			if j.Status == "running" {
				victim, survivor = pair[0], pair[1]
			}
		}
	}
	if victim == nil {
		t.Fatal("no worker is running the job")
	}
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = victim.cmd.Process.Wait()

	status, snap := waitTerminal(t, coord, job1, 3*time.Minute)
	if status != "succeeded" {
		t.Fatalf("job after worker death finished %q, want succeeded", status)
	}
	requireIdentical(t, snap, want, "worker-failover")

	// ---- Phase 2: kill and restart the coordinator mid-run. ----
	job2 := submitJob(t, coord, spec) // warm pass: survivor's memos are hot
	pollEpisodes(t, coord, job2, 20)
	if err := coord.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = coord.cmd.Process.Wait()

	coord2 := startDaemonArgs(t, bin, coordAddr, coordArgs...)
	status, snap = waitTerminal(t, coord2, job2, 3*time.Minute)
	if status != "succeeded" {
		t.Fatalf("job after coordinator restart finished %q, want succeeded", status)
	}
	requireIdentical(t, snap, want, "coordinator-restart")

	// Re-attachment, not re-dispatch: the surviving worker saw exactly two
	// submissions across the whole smoke (one per phase), not a third from
	// the restarted coordinator.
	resp := clusterGet(t, survivor.base+"/v1/jobs")
	var onSurvivor []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&onSurvivor); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(onSurvivor) != 2 {
		t.Fatalf("survivor ran %d jobs, want 2 (restart must re-attach, not re-dispatch)", len(onSurvivor))
	}

	// SSE replay through the restarted coordinator: resume near the tail.
	from := episodes - 5
	req, _ := http.NewRequest(http.MethodGet, coord2.base+"/v1/jobs/"+job2+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(from-1))
	sse, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	r := bufio.NewReader(sse.Body)
	var events, ids []string
	cur := ""
	for len(events) < 7 {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ids = append(ids, line[len("id: "):])
		case line == "" && cur != "":
			events = append(events, cur)
			cur = ""
		}
	}
	if len(events) != 6 {
		t.Fatalf("SSE replay: %d frames (%v), want 5 episodes + done", len(events), events)
	}
	for i := 0; i < 5; i++ {
		if events[i] != "episode" || ids[i] != fmt.Sprint(from+i) {
			t.Fatalf("replay frame %d: %s id %s, want episode %d", i, events[i], ids[i], from+i)
		}
	}
	if events[5] != "done" || ids[5] != fmt.Sprint(episodes) {
		t.Fatalf("terminal frame %s id %s, want done %d", events[5], ids[5], episodes)
	}
}
