// Nasaiclint machine-checks the repository's correctness invariants as a
// `go vet` tool: determinism of every result-affecting path, journal-
// before-publish locking hygiene, context plumbing, and no IO under hot
// locks. The rules it enforces statically are the same invariants the
// differential/determinism test suites pin dynamically; see
// internal/analysis for the catalogue.
//
// Usage:
//
//	go build -o bin/nasaiclint ./cmd/nasaiclint
//	go vet -vettool=bin/nasaiclint ./...
//
// or equivalently, standalone (it re-execs go vet under the hood):
//
//	bin/nasaiclint ./...
//
// A diagnostic is suppressed — with a mandatory reason — by a trailing or
// preceding comment:
//
//	t := time.Now() //lint:allow determinism heartbeat timestamp, never in results
//
// Reason-less or stale (nothing-suppressing) directives are errors
// themselves, so the allowlist cannot rot.
package main

import (
	"nasaic/internal/analysis"
	"nasaic/internal/analysis/framework"
)

func main() {
	framework.Main(analysis.Suite()...)
}
