// Command nasaic runs the NASAIC co-exploration for one of the paper's
// workloads and reports the best identified (architectures, accelerator)
// pair together with the exploration statistics.
//
// Usage:
//
//	nasaic -workload W1 [-episodes 500] [-seed 1] [-top 5] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"

	"nasaic/internal/core"
	"nasaic/internal/export"
	"nasaic/internal/profiling"
	"nasaic/internal/sched"
	"nasaic/internal/workload"
)

func main() {
	var (
		wName      = flag.String("workload", "W1", "workload to explore: W1 (CIFAR-10+Nuclei), W2 (CIFAR-10+STL-10), W3 (CIFAR-10 x2)")
		episodes   = flag.Int("episodes", 500, "exploration episodes (beta in the paper)")
		hwSteps    = flag.Int("hw-steps", 10, "hardware-only steps per episode (phi)")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		top        = flag.Int("top", 5, "how many explored solutions to print")
		quiet      = flag.Bool("quiet", false, "print only the best solution line")
		optim      = flag.String("optimizer", "rl", "search strategy: rl (the paper's RNN controller) or ea (evolutionary)")
		trace      = flag.Bool("trace", false, "print the best solution's layer-to-sub-accelerator schedule")
		hwcache    = flag.Bool("hwcache", true, "memoize hardware evaluations (results are identical either way)")
		layermemo  = flag.Bool("layermemo", true, "memoize per-layer cost-model queries (results are identical either way)")
		sharedmemo = flag.Bool("sharedmemo", false, "use the process-wide layer-cost memo instead of a per-run one (results are identical either way)")
		batchrl    = flag.Bool("batchrl", true, "use the controller's batched policy-gradient fast path (results are identical either way)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	// fail flushes the profiles before exiting: os.Exit skips deferred calls,
	// and an unterminated CPU profile is unreadable.
	fail := func(code int, msg any) {
		fmt.Fprintln(os.Stderr, msg)
		stopProf()
		os.Exit(code)
	}

	w, err := workload.ByName(*wName)
	if err != nil {
		fail(2, err)
	}
	cfg := core.DefaultConfig()
	cfg.Episodes = *episodes
	cfg.HWSteps = *hwSteps
	cfg.Seed = *seed
	cfg.HWCache = *hwcache
	cfg.LayerCostMemo = *layermemo
	cfg.ShareLayerMemo = *sharedmemo
	cfg.BatchedController = *batchrl

	x, err := core.New(w, cfg)
	if err != nil {
		fail(1, err)
	}
	if !*quiet {
		fmt.Printf("NASAIC co-exploration on %s  specs=%s  episodes=%d  phi=%d  seed=%d  optimizer=%s\n",
			w.Name, w.Specs, cfg.Episodes, cfg.HWSteps, cfg.Seed, *optim)
	}
	var res *core.Result
	switch *optim {
	case "rl":
		res = x.Run()
	case "ea":
		ec := core.DefaultEvolutionConfig()
		// Match the RL budget: Population x Generations ~ Episodes x (1+phi).
		ec.Generations = cfg.Episodes * (1 + cfg.HWSteps) / ec.Population
		if ec.Generations < 1 {
			ec.Generations = 1
		}
		res = x.RunEvolution(ec)
	default:
		fail(2, fmt.Sprintf("unknown optimizer %q (want rl or ea)", *optim))
	}
	if res.Best == nil {
		fmt.Printf("no feasible solution found in %d episodes (pruned %d)\n", cfg.Episodes, res.Pruned)
		stopProf()
		os.Exit(1)
	}

	best := res.Best
	fmt.Printf("best: %s\n", best.Design)
	for i, t := range w.Tasks {
		fmt.Printf("  %-14s %s = %s  arch %s\n",
			t.Dataset.String(), t.Dataset.Metric(), export.Pct(best.Accuracies[i]),
			t.Space.ValuesString(best.ArchChoices[i]))
	}
	fmt.Printf("  latency %s cycles   energy %s nJ   area %s um2   (specs %s)\n",
		export.Sci(float64(best.Latency)), export.Sci(best.EnergyNJ),
		export.Sci(best.AreaUM2), w.Specs)
	if *trace {
		problem, _, placements, err := x.Evaluator().Schedule(best.Networks, best.Design)
		if err != nil {
			fail(1, err)
		}
		fmt.Println()
		sched.RenderGantt(os.Stdout, problem, placements, 96)
	}
	if *quiet {
		return
	}

	fmt.Printf("\nexploration: %d feasible solutions, %d episodes pruned, %d trainings, %d hardware evaluations\n",
		len(res.Explored), res.Pruned, res.Trainings, res.HWEvals)
	fmt.Printf("hw-eval cache: %d of %d requests served from cache (%.1f%%), %d in-batch dedups\n",
		res.HWCacheHits, res.HWRequests, res.HWCacheHitPct(), res.HWDeduped)
	fmt.Printf("layer-cost memo: %d of %d cost-model queries served from memo (%.1f%%)\n",
		res.LayerCostHits, res.LayerCostRequests, res.LayerCostHitPct())
	if *sharedmemo {
		fmt.Printf("  shared process-wide memo: %d resident entries\n", x.Evaluator().LayerMemoEntries())
	}
	if *optim == "rl" {
		mode := "batched (lockstep batch of 1+phi episodes)"
		if !*batchrl {
			mode = "sequential (one episode at a time)"
		}
		fmt.Printf("controller: %s policy-gradient path\n", mode)
	}
	if cs := x.Evaluator().CacheStats(); cs.Requests() > 0 {
		fmt.Printf("  cache detail: %d resident entries, %d evictions, %d in-flight dedups\n",
			cs.Size, cs.Evictions, cs.Dedups)
	}
	n := *top
	if n > len(res.Explored) {
		n = len(res.Explored)
	}
	fmt.Printf("top %d explored solutions:\n", n)
	for _, s := range res.Explored[:n] {
		fmt.Printf("  %s\n", s)
	}
}
