// Command nasaic runs the NASAIC co-exploration for one of the paper's
// workloads and reports the best identified (architectures, accelerator)
// pair together with the exploration statistics. It is a thin shell over the
// public pkg/nasaic API — the same code path cmd/nasaicd serves over HTTP.
//
// Runs are deterministic per seed: bit-identical across hosts, worker
// counts and cache states. That invariant is machine-checked by the
// cmd/nasaiclint analyzers (run in CI via `go vet -vettool`) on top of the
// differential test suites.
//
// Usage:
//
//	nasaic -workload W1 [-episodes 500] [-seed 1] [-top 5] [-quiet] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"nasaic/internal/export"
	"nasaic/internal/profiling"
	"nasaic/pkg/nasaic"
)

func main() {
	var (
		wName      = flag.String("workload", "W1", "workload to explore: W1 (CIFAR-10+Nuclei), W2 (CIFAR-10+STL-10), W3 (CIFAR-10 x2)")
		episodes   = flag.Int("episodes", 500, "exploration episodes (beta in the paper)")
		hwSteps    = flag.Int("hw-steps", 10, "hardware-only steps per episode (phi)")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		top        = flag.Int("top", 5, "how many explored solutions to print")
		quiet      = flag.Bool("quiet", false, "print only the best solution line")
		progress   = flag.Bool("progress", false, "stream per-episode progress lines to stderr")
		optim      = flag.String("optimizer", "rl", "search strategy: rl (the paper's RNN controller) or ea (evolutionary)")
		trace      = flag.Bool("trace", false, "print the best solution's layer-to-sub-accelerator schedule")
		hwcache    = flag.Bool("hwcache", true, "memoize hardware evaluations (results are identical either way)")
		layermemo  = flag.Bool("layermemo", true, "memoize per-layer cost-model queries (results are identical either way)")
		sharedmemo = flag.Bool("sharedmemo", false, "use the process-wide layer-cost memo instead of a per-run one (results are identical either way)")
		batchrl    = flag.Bool("batchrl", true, "use the controller's batched policy-gradient fast path (results are identical either way)")
		solverckpt = flag.Bool("solverckpt", true, "use the HAP heuristic's checkpointed move-scan simulator (results are identical either way)")
		cachedir   = flag.String("cachedir", "", "directory for the persistent cache warm tier; a second run pointed here starts with warm memos (results are identical either way)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	// fail flushes the profiles before exiting: os.Exit skips deferred calls,
	// and an unterminated CPU profile is unreadable.
	fail := func(code int, msg any) {
		fmt.Fprintln(os.Stderr, msg)
		stopProf()
		os.Exit(code)
	}

	// Ctrl-C cancels the search promptly; the partial result is discarded
	// (use cmd/nasaicd for resumable streaming of long runs).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []nasaic.Option{
		nasaic.WithWorkload(*wName),
		nasaic.WithEpisodes(*episodes),
		nasaic.WithHWSteps(*hwSteps),
		nasaic.WithSeed(*seed),
		nasaic.WithOptimizer(nasaic.Optimizer(*optim)),
		nasaic.WithHWCache(*hwcache),
		nasaic.WithLayerCostMemo(*layermemo),
		nasaic.WithProcessSharedLayerMemo(*sharedmemo),
		nasaic.WithBatchedController(*batchrl),
		nasaic.WithSolverCheckpoints(*solverckpt),
		nasaic.WithCacheDir(*cachedir),
	}
	if *progress {
		opts = append(opts, nasaic.WithEventHandler(func(e nasaic.Event) {
			best := ""
			if e.Best != nil {
				best = fmt.Sprintf("  best=%.4f", e.Best.WeightedAccuracy)
			}
			fmt.Fprintf(os.Stderr, "episode %d  reward=%.4f  feasible=%v%s\n",
				e.Episode, e.Reward, e.Feasible, best)
		}))
	}

	if !*quiet {
		fmt.Printf("NASAIC co-exploration on %s  episodes=%d  phi=%d  seed=%d  optimizer=%s\n",
			*wName, *episodes, *hwSteps, *seed, *optim)
	}
	res, err := nasaic.Run(ctx, opts...)
	if err != nil {
		fail(1, err)
	}
	if res.Best == nil {
		fmt.Printf("no feasible solution found in %d episodes (pruned %d)\n",
			res.Episodes, res.Stats.PrunedEpisodes)
		stopProf()
		os.Exit(1)
	}

	best := res.Best
	fmt.Printf("best: %s\n", best.Design)
	for _, t := range best.Tasks {
		fmt.Printf("  %-14s %s = %s  arch %s\n",
			t.Dataset, t.Metric, export.Pct(t.Accuracy), t.Architecture)
	}
	fmt.Printf("  latency %s cycles   energy %s nJ   area %s um2   (specs %s)\n",
		export.Sci(float64(best.LatencyCycles)), export.Sci(best.EnergyNJ),
		export.Sci(best.AreaUM2), res.Specs)
	if *trace {
		fmt.Println()
		if err := res.RenderSchedule(os.Stdout, 96); err != nil {
			fail(1, err)
		}
	}
	if *quiet {
		return
	}

	st := res.Stats
	fmt.Printf("\nexploration: %d feasible solutions, %d episodes pruned, %d trainings, %d hardware evaluations\n",
		len(res.Explored), st.PrunedEpisodes, st.Trainings, st.HWEvals)
	fmt.Printf("hw-eval cache: %d of %d requests served from cache (%.1f%%), %d in-batch dedups\n",
		st.HWCacheHits, st.HWRequests, st.HWCacheHitPct(), st.HWDeduped)
	fmt.Printf("layer-cost memo: %d of %d cost-model queries served from memo (%.1f%%)\n",
		st.LayerCostHits, st.LayerCostRequests, st.LayerCostHitPct())
	if *optim == "rl" {
		mode := "batched (lockstep batch of 1+phi episodes)"
		if !*batchrl {
			mode = "sequential (one episode at a time)"
		}
		fmt.Printf("controller: %s policy-gradient path\n", mode)
	}
	n := *top
	if n > len(res.Explored) {
		n = len(res.Explored)
	}
	fmt.Printf("top %d explored solutions:\n", n)
	for _, s := range res.Explored[:n] {
		fmt.Printf("  %s\n", s)
	}
}
