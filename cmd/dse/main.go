// Command dse regenerates the paper's design-space exploration figures
// through the public pkg/nasaic API:
//
//	dse -fig 1                    # Fig. 1: motivating CIFAR-10 study
//	dse -fig 6 -workload W1       # Fig. 6 panels (W1, W2 or W3)
//
// Each run prints an ASCII latency-energy projection and, with -out, writes
// the full 3-D point series as CSV for external plotting. Point series are
// deterministic per seed — an invariant machine-checked by the
// cmd/nasaiclint analyzers (CI runs them via `go vet -vettool`).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"nasaic/internal/profiling"
	"nasaic/pkg/nasaic"
)

func main() {
	var (
		fig        = flag.Int("fig", 6, "figure to regenerate: 1 or 6")
		wName      = flag.String("workload", "W1", "workload for fig 6: W1, W2 or W3")
		paper      = flag.Bool("paper", false, "use the paper's full search budget")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "", "optional directory for CSV export")
		hwcache    = flag.Bool("hwcache", true, "memoize hardware evaluations (results are identical either way)")
		layermemo  = flag.Bool("layermemo", true, "memoize per-layer cost-model queries (results are identical either way)")
		sharedmemo = flag.Bool("sharedmemo", false, "share the layer-cost and accuracy memos across the figure's searches (warm-start; results are identical)")
		batchrl    = flag.Bool("batchrl", true, "use the controller's batched policy-gradient fast path (results are identical either way)")
		solverckpt = flag.Bool("solverckpt", true, "use the HAP heuristic's checkpointed move-scan simulator (results are identical either way)")
		cachedir   = flag.String("cachedir", "", "directory for the persistent cache warm tier; a second run pointed here starts with warm memos (results are identical either way)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the regeneration to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	// fail flushes the profiles before exiting: os.Exit skips deferred calls,
	// and an unterminated CPU profile is unreadable.
	fail := func(code int, msg any) {
		fmt.Fprintln(os.Stderr, msg)
		stopProf()
		os.Exit(code)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	b := nasaic.QuickBudget()
	if *paper {
		b = nasaic.PaperBudget()
	}
	b.Seed = *seed
	b.DisableHWCache = !*hwcache
	b.DisableLayerMemo = !*layermemo
	b.SharedMemo = *sharedmemo
	b.SequentialController = !*batchrl
	b.NoSolverCheckpoint = !*solverckpt
	b.CacheDir = *cachedir

	switch *fig {
	case 1:
		if err := nasaic.Fig1(ctx, b, os.Stdout, *out); err != nil {
			fail(1, err)
		}
	case 6:
		st, err := nasaic.Fig6(ctx, *wName, b, os.Stdout, *out)
		if err != nil {
			fail(1, err)
		}
		fmt.Printf("evaluator work: %d hardware evaluations for %d requests (%.1f%% cache hits, %d in-batch dedups)\n",
			st.HWEvals, st.HWRequests, st.HWCacheHitPct(), st.HWDeduped)
		fmt.Printf("layer-cost memo: %d of %d cost-model queries served (%.1f%%)\n",
			st.LayerCostHits, st.LayerCostRequests, st.LayerCostHitPct())
	default:
		fail(2, fmt.Sprintf("unknown figure %d (want 1 or 6)", *fig))
	}
}
